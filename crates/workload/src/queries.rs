//! Query-set generation (§5.2 of the paper).

use minskew_data::Dataset;
use minskew_geom::{Point, Rect};
use rand::{Rng, SeedableRng};

/// Where query centres come from.
///
/// The paper draws centres from the *data* (each query centre is the centre
/// of a random input rectangle), which concentrates queries where objects
/// live and guarantees non-empty results in expectation. Uniform centres
/// are provided as an ablation: they probe empty space too, which changes
/// which technique errors dominate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CenterMode {
    /// Centres sampled from input-rectangle centres (the paper's §5.2 model).
    #[default]
    DataCenters,
    /// Centres uniform over the input MBR.
    UniformInMbr,
}

/// A set of range queries generated per the paper's query model.
///
/// The centres of the query rectangles are chosen randomly *from the set of
/// centres of the input rectangles* (so queries land where data lives, and
/// no query returns an empty result set in expectation), and the side
/// lengths are uniform in `[0.5·√a, 1.5·√a]` where the average query area
/// `a` is `(QSize · width(MBR)) × (QSize · height(MBR))`.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    queries: Vec<Rect>,
    qsize: f64,
}

impl QueryWorkload {
    /// The paper's standard query count per experiment point.
    pub const PAPER_QUERY_COUNT: usize = 10_000;

    /// Generates `count` queries with the given *QSize* (average query side
    /// as a fraction of the corresponding input-MBR side; the paper sweeps
    /// 2 %–25 %).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty, `count == 0`, or `qsize` is not in
    /// `(0, 1]`... except that `qsize == 0` is allowed and produces *point
    /// queries* at data-rectangle centres (the paper's point-query case).
    pub fn generate(data: &Dataset, qsize: f64, count: usize, seed: u64) -> QueryWorkload {
        Self::generate_with_centers(data, qsize, count, seed, CenterMode::DataCenters)
    }

    /// Like [`Self::generate`] with an explicit query-centre model.
    pub fn generate_with_centers(
        data: &Dataset,
        qsize: f64,
        count: usize,
        seed: u64,
        centers: CenterMode,
    ) -> QueryWorkload {
        assert!(!data.is_empty(), "cannot generate queries over empty data");
        assert!(count > 0, "need at least one query");
        assert!(
            (0.0..=1.0).contains(&qsize),
            "QSize must be a fraction in [0, 1]"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mbr = data.stats().mbr;
        let avg_area = (qsize * mbr.width()) * (qsize * mbr.height());
        let side = avg_area.sqrt();
        let rects = data.rects();
        let queries = (0..count)
            .map(|_| {
                let center = match centers {
                    CenterMode::DataCenters => rects[rng.gen_range(0..rects.len())].center(),
                    CenterMode::UniformInMbr => Point::new(
                        rng.gen_range(mbr.lo.x..=mbr.hi.x),
                        rng.gen_range(mbr.lo.y..=mbr.hi.y),
                    ),
                };
                if side == 0.0 {
                    return Rect::from_point(center);
                }
                let w = rng.gen_range(0.5 * side..=1.5 * side);
                let h = rng.gen_range(0.5 * side..=1.5 * side);
                clamp_into(Rect::from_center_size(center, w, h), &mbr)
            })
            .collect();
        QueryWorkload { queries, qsize }
    }

    /// Generates point queries at `count` randomly chosen data-rectangle
    /// centres.
    pub fn points(data: &Dataset, count: usize, seed: u64) -> QueryWorkload {
        Self::generate(data, 0.0, count, seed)
    }

    /// Wraps an explicit query list (e.g. a workload captured from a query
    /// log) so it can be fed to the evaluation machinery. `qsize` is
    /// recorded for reporting only.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty.
    pub fn from_queries(queries: Vec<Rect>, qsize: f64) -> QueryWorkload {
        assert!(!queries.is_empty(), "need at least one query");
        QueryWorkload { queries, qsize }
    }

    /// The generated queries.
    pub fn queries(&self) -> &[Rect] {
        &self.queries
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Returns `true` if the workload has no queries (never, by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The QSize parameter this workload was generated with.
    pub fn qsize(&self) -> f64 {
        self.qsize
    }

    /// Saves the workload as a `x1,y1,x2,y2` CSV (with the QSize recorded
    /// in a header comment), so evaluation runs can be replayed bit-exactly
    /// across machines and versions.
    pub fn save_csv(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        use std::io::Write;
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(w, "# minskew query workload; qsize={}", self.qsize)?;
        for q in &self.queries {
            writeln!(w, "{},{},{},{}", q.lo.x, q.lo.y, q.hi.x, q.hi.y)?;
        }
        w.flush()
    }

    /// Loads a workload saved by [`Self::save_csv`] (the QSize header is
    /// recovered when present; plain rect CSVs load with `qsize = 0`).
    pub fn load_csv(path: impl AsRef<std::path::Path>) -> Result<QueryWorkload, String> {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.as_ref().display()))?;
        let mut qsize = 0.0;
        let mut queries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if let Some(rest) = trimmed.strip_prefix('#') {
                if let Some(v) = rest.trim().strip_prefix("minskew query workload; qsize=") {
                    qsize = v.trim().parse().unwrap_or(0.0);
                }
                continue;
            }
            let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
            if fields.len() != 4 {
                return Err(format!("line {}: expected 4 fields", i + 1));
            }
            let mut vals = [0.0f64; 4];
            for (slot, f) in vals.iter_mut().zip(&fields) {
                *slot = f
                    .parse()
                    .map_err(|e| format!("line {}: bad number {f:?}: {e}", i + 1))?;
            }
            queries.push(Rect::new(vals[0], vals[1], vals[2], vals[3]));
        }
        if queries.is_empty() {
            return Err("workload file contains no queries".into());
        }
        Ok(QueryWorkload { queries, qsize })
    }
}

/// Translates `r` so it lies within `bounds` (§5.2: "rectangles lying within
/// the MBR of the input"); rectangles larger than a bounds dimension are
/// clipped instead.
fn clamp_into(r: Rect, bounds: &Rect) -> Rect {
    let mut lo = r.lo;
    let mut hi = r.hi;
    for (lo_c, hi_c, b_lo, b_hi) in [
        (&mut lo.x, &mut hi.x, bounds.lo.x, bounds.hi.x),
        (&mut lo.y, &mut hi.y, bounds.lo.y, bounds.hi.y),
    ] {
        let len = *hi_c - *lo_c;
        if len > b_hi - b_lo {
            *lo_c = b_lo;
            *hi_c = b_hi;
        } else if *lo_c < b_lo {
            *lo_c = b_lo;
            *hi_c = b_lo + len;
        } else if *hi_c > b_hi {
            *hi_c = b_hi;
            *lo_c = b_hi - len;
        }
    }
    Rect::from_corners(Point::new(lo.x, lo.y), Point::new(hi.x, hi.y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use minskew_datagen::charminar_with;

    #[test]
    fn queries_lie_within_input_mbr() {
        let ds = charminar_with(2_000, 1);
        let w = QueryWorkload::generate(&ds, 0.25, 500, 2);
        let mbr = ds.stats().mbr;
        assert_eq!(w.len(), 500);
        assert!(w.queries().iter().all(|q| mbr.contains_rect(q)));
        assert_eq!(w.qsize(), 0.25);
    }

    #[test]
    fn sides_follow_the_uniform_band() {
        let ds = charminar_with(2_000, 3);
        let qsize = 0.1;
        let w = QueryWorkload::generate(&ds, qsize, 2_000, 4);
        let mbr = ds.stats().mbr;
        let side = ((qsize * mbr.width()) * (qsize * mbr.height())).sqrt();
        let mut mean_w = 0.0;
        for q in w.queries() {
            // Clamping can only shrink, so widths stay <= 1.5 * side.
            assert!(q.width() <= 1.5 * side + 1e-9);
            mean_w += q.width();
        }
        mean_w /= w.len() as f64;
        // Mean close to `side` (the clamp rarely shrinks interior queries).
        assert!(
            (mean_w - side).abs() / side < 0.1,
            "mean width {mean_w} vs expected {side}"
        );
    }

    #[test]
    fn queries_hit_data() {
        // Because centres come from data centres, every query intersects at
        // least the rectangle it was seeded from... unless clamping moved
        // it; on Charminar that is rare. Check an overwhelming majority hit.
        let ds = charminar_with(2_000, 5);
        let w = QueryWorkload::generate(&ds, 0.05, 300, 6);
        let hits = w
            .queries()
            .iter()
            .filter(|q| ds.count_intersecting(q) > 0)
            .count();
        assert!(hits >= 295, "{hits}/300 queries hit data");
    }

    #[test]
    fn point_queries_are_degenerate() {
        let ds = charminar_with(500, 7);
        let w = QueryWorkload::points(&ds, 100, 8);
        assert!(w
            .queries()
            .iter()
            .all(|q| q.area() == 0.0 && q.width() == 0.0));
        // Every point query sits at a rect centre, so it hits that rect.
        assert!(w.queries().iter().all(|q| ds.count_intersecting(q) > 0));
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = charminar_with(500, 9);
        let a = QueryWorkload::generate(&ds, 0.1, 50, 10);
        let b = QueryWorkload::generate(&ds, 0.1, 50, 10);
        assert_eq!(a.queries(), b.queries());
    }

    #[test]
    fn uniform_centers_probe_empty_space() {
        // On Charminar most of the interior is empty, so uniform-centred
        // small queries frequently return nothing, unlike data-centred ones.
        let ds = charminar_with(2_000, 13);
        let w = QueryWorkload::generate_with_centers(&ds, 0.02, 300, 14, CenterMode::UniformInMbr);
        let misses = w
            .queries()
            .iter()
            .filter(|q| ds.count_intersecting(q) == 0)
            .count();
        assert!(misses > 50, "expected many empty results, got {misses}");
        let mbr = ds.stats().mbr;
        assert!(w.queries().iter().all(|q| mbr.contains_rect(q)));
    }

    #[test]
    fn csv_roundtrip_replays_exactly() {
        let ds = charminar_with(400, 15);
        let w = QueryWorkload::generate(&ds, 0.1, 40, 16);
        let path =
            std::env::temp_dir().join(format!("minskew-workload-{}.csv", std::process::id()));
        w.save_csv(&path).unwrap();
        let back = QueryWorkload::load_csv(&path).unwrap();
        assert_eq!(back.queries(), w.queries());
        assert_eq!(back.qsize(), w.qsize());
        std::fs::remove_file(&path).ok();
        assert!(QueryWorkload::load_csv("/no/such/file.csv").is_err());
    }

    #[test]
    fn oversized_queries_clip_to_bounds() {
        let ds = charminar_with(100, 11);
        let w = QueryWorkload::generate(&ds, 1.0, 50, 12);
        let mbr = ds.stats().mbr;
        assert!(w.queries().iter().all(|q| mbr.contains_rect(q)));
    }
}
