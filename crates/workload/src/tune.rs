//! Automatic Min-Skew configuration — the paper's open question.
//!
//! §5.5.3 ends with: "finding the correct number of regions which provides
//! the least error is thus an interesting problem for further exploration
//! and part of our future work", and §5.6.1 leaves "the optimal number of
//! refinements" open likewise. This module answers both empirically, the
//! way a DBMS would at ANALYZE time: hold out a validation workload, score
//! a ladder of candidate configurations against exact counts, and keep the
//! winner. Construction is cheap (Table 1), so trying a dozen
//! configurations costs seconds even at full scale.

use minskew_core::{MinSkewBuilder, SpatialHistogram};
use minskew_data::Dataset;

use crate::{evaluate, GroundTruth, QueryWorkload};

/// Search space and validation-workload parameters for [`tune_min_skew`].
#[derive(Debug, Clone)]
pub struct TuneOptions {
    /// Candidate region counts. Default: a geometric ladder from `4×buckets`
    /// to `400×buckets` (the paper's observations put the sweet spot at a
    /// moderate multiple of the bucket budget).
    pub region_ladder: Vec<usize>,
    /// Candidate refinement depths (applied to the best region count).
    pub refinement_ladder: Vec<usize>,
    /// Query sizes the validation workload mixes (the tuner optimises the
    /// average over them, mirroring a mixed production workload).
    pub qsizes: Vec<f64>,
    /// Validation queries per query size.
    pub queries_per_size: usize,
    /// Seed for validation-workload generation.
    pub seed: u64,
}

impl TuneOptions {
    /// Default search space for a given bucket budget.
    pub fn for_buckets(buckets: usize) -> TuneOptions {
        let base = buckets.max(25);
        TuneOptions {
            region_ladder: vec![base * 4, base * 16, base * 64, base * 100, base * 400],
            refinement_ladder: vec![0, 1, 2, 3, 4, 6],
            qsizes: vec![0.02, 0.10, 0.25],
            queries_per_size: 500,
            seed: 0xA070,
        }
    }
}

/// One scored configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuneTrial {
    /// Region count tried.
    pub regions: usize,
    /// Refinement depth tried.
    pub refinements: usize,
    /// Mean of the per-qsize average relative errors.
    pub error: f64,
}

/// The tuner's outcome: the winning histogram and the full trial log.
#[derive(Debug)]
pub struct TunedMinSkew {
    /// The best histogram found.
    pub histogram: SpatialHistogram,
    /// Winning configuration.
    pub best: TuneTrial,
    /// Every configuration scored, in trial order.
    pub trials: Vec<TuneTrial>,
}

/// Selects the Min-Skew region count and refinement depth empirically.
///
/// Two-phase search: sweep `region_ladder` without refinement, then sweep
/// `refinement_ladder` at the winning region count (refinements exist to
/// *repair* a too-fine grid, so the joint space factorises well in
/// practice — this is also how the paper studies them).
///
/// # Panics
///
/// Panics if the dataset is empty or the option ladders are empty.
pub fn tune_min_skew(data: &Dataset, buckets: usize, opts: &TuneOptions) -> TunedMinSkew {
    assert!(!data.is_empty(), "cannot tune over empty data");
    assert!(
        !opts.region_ladder.is_empty() && !opts.refinement_ladder.is_empty(),
        "ladders must be non-empty"
    );
    assert!(
        !opts.qsizes.is_empty(),
        "need at least one validation qsize"
    );

    // Validation workloads + exact counts, computed once.
    let truth = GroundTruth::index(data);
    let workloads: Vec<(QueryWorkload, Vec<usize>)> = opts
        .qsizes
        .iter()
        .enumerate()
        .map(|(i, &qs)| {
            let w = QueryWorkload::generate(data, qs, opts.queries_per_size, opts.seed + i as u64);
            let counts = truth.counts(w.queries());
            (w, counts)
        })
        .collect();
    let score = |hist: &SpatialHistogram| -> f64 {
        workloads
            .iter()
            .map(|(w, c)| evaluate(hist, w, c).avg_relative_error)
            .sum::<f64>()
            / workloads.len() as f64
    };

    let mut trials = Vec::new();
    let mut best: Option<(TuneTrial, SpatialHistogram)> = None;
    let consider = |trial: TuneTrial,
                    hist: SpatialHistogram,
                    best: &mut Option<(TuneTrial, SpatialHistogram)>| {
        if best.as_ref().is_none_or(|(b, _)| trial.error < b.error) {
            *best = Some((trial, hist));
        }
    };

    // Phase 1: regions.
    for &regions in &opts.region_ladder {
        let hist = MinSkewBuilder::new(buckets).regions(regions).build(data);
        let trial = TuneTrial {
            regions,
            refinements: 0,
            error: score(&hist),
        };
        trials.push(trial);
        consider(trial, hist, &mut best);
    }
    let best_regions = best.as_ref().expect("phase 1 ran").0.regions;

    // Phase 2: refinements at the winning region count.
    for &k in &opts.refinement_ladder {
        if k == 0 {
            continue; // already scored in phase 1
        }
        let hist = MinSkewBuilder::new(buckets)
            .regions(best_regions)
            .progressive_refinements(k)
            .build(data);
        let trial = TuneTrial {
            regions: best_regions,
            refinements: k,
            error: score(&hist),
        };
        trials.push(trial);
        consider(trial, hist, &mut best);
    }

    let (best, histogram) = best.expect("at least one trial ran");
    TunedMinSkew {
        histogram,
        best,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minskew_datagen::charminar_with;

    fn small_opts() -> TuneOptions {
        TuneOptions {
            region_ladder: vec![100, 400, 1_600],
            refinement_ladder: vec![0, 1, 2],
            qsizes: vec![0.05, 0.25],
            queries_per_size: 150,
            seed: 3,
        }
    }

    #[test]
    fn picks_the_best_trial() {
        let ds = charminar_with(5_000, 1);
        let tuned = tune_min_skew(&ds, 50, &small_opts());
        // 3 region trials + 2 refinement trials.
        assert_eq!(tuned.trials.len(), 5);
        let min = tuned
            .trials
            .iter()
            .map(|t| t.error)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(tuned.best.error, min);
        assert!(tuned.best.error.is_finite());
        assert!(tuned.histogram.num_buckets() <= 50);
    }

    #[test]
    fn tuned_beats_or_matches_worst_fixed_choice() {
        let ds = charminar_with(8_000, 2);
        let opts = small_opts();
        let tuned = tune_min_skew(&ds, 50, &opts);
        let worst = tuned.trials.iter().map(|t| t.error).fold(0.0f64, f64::max);
        assert!(tuned.best.error <= worst);
        // On skewed data the spread across configurations is real.
        assert!(worst > tuned.best.error, "tuning space was degenerate");
    }

    #[test]
    fn default_options_are_sane() {
        let o = TuneOptions::for_buckets(100);
        assert!(o.region_ladder.windows(2).all(|w| w[0] < w[1]));
        assert!(o.refinement_ladder.contains(&0));
    }

    #[test]
    #[should_panic(expected = "empty data")]
    fn empty_data_rejected() {
        tune_min_skew(&minskew_data::Dataset::new(vec![]), 10, &small_opts());
    }
}
