//! Query workloads, error metrics, and the experiment runner used by the
//! evaluation harness (§5 of the paper).
//!
//! * [`QueryWorkload`] generates query sets per §5.2: query centres drawn
//!   from the centres of input rectangles, query dimensions uniform in
//!   `[0.5·√a, 1.5·√a]` for a target average area `a` derived from the
//!   *QSize* parameter (average query side as a fraction of the input MBR
//!   side).
//! * [`GroundTruth`] computes exact result sizes with a bulk-loaded
//!   R\*-tree — scanning 400 000 rectangles 10 000 times is infeasible.
//! * [`evaluate`] measures a [`minskew_core::SpatialEstimator`]'s **average relative
//!   error** — `Σ|rᵢ − eᵢ| / Σ rᵢ` — exactly the paper's §5 metric, plus
//!   auxiliary statistics.
//! * [`tune_min_skew`] implements the paper's stated future work: choosing
//!   the region count and refinement depth empirically at ANALYZE time.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod metrics;
mod queries;
mod truth;
mod tune;

pub use metrics::{bootstrap_error, evaluate, evaluate_all, ErrorInterval, ErrorReport};
pub use queries::{CenterMode, QueryWorkload};
pub use truth::GroundTruth;
pub use tune::{tune_min_skew, TuneOptions, TuneTrial, TunedMinSkew};
