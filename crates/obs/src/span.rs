//! Monotonic-clock timing: stopwatches, RAII histogram timers, and named
//! trace spans.

use crate::Histogram;
#[cfg(not(feature = "noop"))]
use std::sync::{Mutex, PoisonError};
#[cfg(not(feature = "noop"))]
use std::time::Instant;

/// Saturating nanoseconds since an earlier instant (u64 covers ~584 years).
#[cfg(not(feature = "noop"))]
fn nanos_since(earlier: Instant) -> u64 {
    u64::try_from(earlier.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A monotonic lap timer: [`Stopwatch::lap`] returns the nanoseconds since
/// the previous lap (or since [`Stopwatch::start`]) and restarts the lap.
///
/// This is the building block for staged hot-path timing (probe → scan →
/// clamp): one `Stopwatch`, one clock read per stage boundary. Under the
/// `noop` feature the clock is never read and every lap is `0`.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    #[cfg(not(feature = "noop"))]
    origin: Instant,
    #[cfg(not(feature = "noop"))]
    last: Instant,
}

impl Stopwatch {
    /// Starts (or restarts) a stopwatch now.
    #[inline]
    pub fn start() -> Stopwatch {
        #[cfg(not(feature = "noop"))]
        let now = Instant::now();
        Stopwatch {
            #[cfg(not(feature = "noop"))]
            origin: now,
            #[cfg(not(feature = "noop"))]
            last: now,
        }
    }

    /// Nanoseconds since the previous lap; the lap restarts.
    #[inline]
    pub fn lap(&mut self) -> u64 {
        #[cfg(not(feature = "noop"))]
        {
            let now = Instant::now();
            let ns = u64::try_from(now.duration_since(self.last).as_nanos()).unwrap_or(u64::MAX);
            self.last = now;
            ns
        }
        #[cfg(feature = "noop")]
        0
    }

    /// Nanoseconds since [`Stopwatch::start`] (independent of laps).
    #[inline]
    pub fn total(&self) -> u64 {
        #[cfg(not(feature = "noop"))]
        return nanos_since(self.origin);
        #[cfg(feature = "noop")]
        0
    }
}

/// RAII timer: records elapsed nanoseconds into a [`Histogram`] on drop.
#[derive(Debug)]
pub struct Timer<'a> {
    histogram: &'a Histogram,
    #[cfg(not(feature = "noop"))]
    start: Instant,
}

impl<'a> Timer<'a> {
    /// Starts timing; the elapsed time lands in `histogram` when the timer
    /// drops.
    #[inline]
    pub fn start(histogram: &'a Histogram) -> Timer<'a> {
        Timer {
            histogram,
            #[cfg(not(feature = "noop"))]
            start: Instant::now(),
        }
    }
}

impl Drop for Timer<'_> {
    fn drop(&mut self) {
        #[cfg(not(feature = "noop"))]
        self.histogram.record(nanos_since(self.start));
        #[cfg(feature = "noop")]
        let _ = self.histogram;
    }
}

/// One completed span in a [`Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The span's name.
    pub name: String,
    /// Nanoseconds from the trace's creation to the span's start.
    pub start_ns: u64,
    /// The span's duration in nanoseconds.
    pub dur_ns: u64,
}

/// An append-only buffer of completed [`Span`]s, ordered by completion.
///
/// A `Trace` is cheap to create and intended to be short-lived — one per
/// CLI invocation or per diagnosed request — so events are plain `String`s
/// behind a mutex, not a lock-free ring. Under the `noop` feature spans
/// record nothing and [`Trace::events`] is always empty.
#[derive(Debug, Default)]
pub struct Trace {
    #[cfg(not(feature = "noop"))]
    epoch: Option<Instant>,
    #[cfg(not(feature = "noop"))]
    events: Mutex<Vec<TraceEvent>>,
}

impl Trace {
    /// Creates an empty trace; span offsets are measured from this moment.
    pub fn new() -> Trace {
        Trace {
            #[cfg(not(feature = "noop"))]
            epoch: Some(Instant::now()),
            #[cfg(not(feature = "noop"))]
            events: Mutex::new(Vec::new()),
        }
    }

    /// Opens a named span; it records itself into the trace when dropped.
    #[inline]
    pub fn span(&self, name: impl Into<String>) -> Span<'_> {
        Span {
            #[cfg(not(feature = "noop"))]
            trace: self,
            #[cfg(not(feature = "noop"))]
            name: name.into(),
            #[cfg(not(feature = "noop"))]
            start: Instant::now(),
            #[cfg(feature = "noop")]
            _phantom: {
                let _ = name.into();
                std::marker::PhantomData
            },
        }
    }

    /// All completed spans, in completion order.
    pub fn events(&self) -> Vec<TraceEvent> {
        #[cfg(not(feature = "noop"))]
        return self
            .events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        #[cfg(feature = "noop")]
        Vec::new()
    }
}

/// An open trace span; completes (and records itself) on drop.
#[derive(Debug)]
pub struct Span<'a> {
    #[cfg(not(feature = "noop"))]
    trace: &'a Trace,
    #[cfg(not(feature = "noop"))]
    name: String,
    #[cfg(not(feature = "noop"))]
    start: Instant,
    #[cfg(feature = "noop")]
    _phantom: std::marker::PhantomData<&'a Trace>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        #[cfg(not(feature = "noop"))]
        {
            let start_ns = self.trace.epoch.map_or(0, |epoch| {
                u64::try_from(self.start.duration_since(epoch).as_nanos()).unwrap_or(u64::MAX)
            });
            let event = TraceEvent {
                name: std::mem::take(&mut self.name),
                start_ns,
                dur_ns: nanos_since(self.start),
            };
            self.trace
                .events
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_laps_are_monotone() {
        let mut sw = Stopwatch::start();
        let a = sw.lap();
        let b = sw.lap();
        if crate::enabled() {
            // Laps are non-negative by construction; both reads succeeded,
            // and the total covers at least both laps.
            assert!(a < u64::MAX && b < u64::MAX);
            assert!(sw.total() >= a + b);
        } else {
            assert_eq!((a, b), (0, 0));
            assert_eq!(sw.total(), 0);
        }
    }

    #[test]
    fn timer_records_into_histogram_on_drop() {
        let h = Histogram::new();
        {
            let _t = Timer::start(&h);
        }
        if crate::enabled() {
            assert_eq!(h.count(), 1);
        } else {
            assert_eq!(h.count(), 0);
        }
    }

    #[test]
    fn trace_collects_spans_in_completion_order() {
        let trace = Trace::new();
        {
            let _outer = trace.span("outer");
            let _inner = trace.span("inner");
            // `inner` drops first, so it completes first.
        }
        let events = trace.events();
        if crate::enabled() {
            assert_eq!(events.len(), 2);
            assert_eq!(events[0].name, "inner");
            assert_eq!(events[1].name, "outer");
            assert!(events[1].start_ns <= events[0].start_ns);
        } else {
            assert!(events.is_empty());
        }
    }
}
