//! Zero-dependency observability for the `minskew` estimator stack.
//!
//! Everything here is built from `std` alone — no external crates — and is
//! designed around one hard contract: **instrumentation must be invisible to
//! the computation it observes**. Metrics are write-only from the hot path's
//! perspective (relaxed atomics, no locks on record), timers read only the
//! monotonic clock, and the whole crate compiles to no-ops under the `noop`
//! feature (same API, zero state, no clock reads) so the differential test
//! suites can prove estimates and encoded statistics are byte-identical with
//! observability present, active, or compiled out.
//!
//! The pieces:
//!
//! * [`Counter`] — a lock-free monotonic `u64` (relaxed atomic add).
//! * [`Gauge`] — a lock-free `f64` cell (the latest value wins).
//! * [`Histogram`] — fixed-bucket **log₂** distribution of `u64` samples
//!   (latencies in nanoseconds, sizes in bytes): 64 buckets, bucket *i*
//!   counting values in `[2^i, 2^(i+1))`, recorded with two relaxed atomic
//!   adds and summarised without allocation.
//! * [`Stopwatch`] / [`Timer`] — monotonic-clock timing; `Timer` is the RAII
//!   form that records into a histogram on drop.
//! * [`Trace`] / [`Span`] — an event buffer of named RAII spans with start
//!   offsets and durations, for `--trace`-style reporting.
//! * [`Registry`] — a process- or component-wide directory of metrics under
//!   hierarchical dot-separated names, exported to JSON
//!   ([`Registry::to_json`], schema-pinned by a golden test) or
//!   human-readable text ([`Registry::to_text`]).
//! * [`FlightRecorder`] — a fixed-capacity lock-free ring of structured
//!   [`QueryRecord`]s (slow / wrong / sampled queries), drained as pinned
//!   `minskew-obs/flight-v1` JSONL.
//!
//! # Example
//!
//! ```
//! use minskew_obs::Registry;
//!
//! let registry = Registry::new();
//! let served = registry.counter("engine.query.calls");
//! let latency = registry.histogram("engine.query.ns");
//! served.inc();
//! latency.record(1_500);
//! let json = registry.to_json();
//! if minskew_obs::enabled() {
//!     assert!(json.contains("\"engine.query.calls\": 1"));
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod export;
mod flight;
mod metrics;
mod registry;
mod span;

pub use flight::{FlightRecorder, FlightTrigger, QueryRecord, TID_BYTES};
pub use metrics::{bucket_bounds, Counter, Gauge, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use registry::{Registry, RegistrySnapshot};
pub use span::{Span, Stopwatch, Timer, Trace, TraceEvent};

/// `true` when the crate records real metrics; `false` when the `noop`
/// feature compiled every operation away. Callers use this to skip
/// assertions about metric contents, never to guard recording itself (the
/// no-ops are free).
pub const fn enabled() -> bool {
    !cfg!(feature = "noop")
}

/// Normalises a display name (a technique name like `"Min-Skew"`) into one
/// dot-separated metric-name component: lowercase, with `-`, spaces, and
/// `.` replaced by `_` so the component cannot collide with the hierarchy
/// separator.
///
/// ```
/// assert_eq!(minskew_obs::name_component("Min-Skew"), "min_skew");
/// assert_eq!(minskew_obs::name_component("Equi-Area"), "equi_area");
/// ```
pub fn name_component(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            '-' | ' ' | '.' => '_',
            c => c.to_ascii_lowercase(),
        })
        .collect()
}
