//! The three metric primitives: counters, gauges, and log₂ histograms.
//!
//! All recording is relaxed-atomic: metrics are statistical summaries, not
//! synchronization points, so no ordering stronger than `Relaxed` is needed
//! and none is paid for. Snapshots taken concurrently with writers are
//! internally consistent per field but not across fields (a histogram's
//! `count` and `sum` may disagree by in-flight samples); exporters document
//! this.

#[cfg(not(feature = "noop"))]
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets in a [`Histogram`]: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` (bucket 0 also absorbs zero), which spans the full
/// `u64` range — sub-nanosecond to half a millennium of nanoseconds.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Index of the log₂ bucket for `value`: `floor(log2(max(value, 1)))`.
#[cfg(not(feature = "noop"))]
fn bucket_of(value: u64) -> usize {
    63 - (value | 1).leading_zeros() as usize
}

/// Inclusive-exclusive bounds `[lo, hi)` of log₂ bucket `i`; the final
/// bucket's upper bound saturates at `u64::MAX`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    let lo = if i == 0 { 0 } else { 1u64 << i };
    let hi = if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
    (lo, hi)
}

/// A lock-free monotonically increasing counter.
///
/// Increments are single relaxed atomic adds, cheap enough for per-call hot
/// paths; reads are relaxed loads. Counters only ever grow, so merging two
/// counters (or publishing a locally accumulated delta) is plain addition —
/// order-independent by construction.
#[derive(Debug, Default)]
pub struct Counter {
    #[cfg(not(feature = "noop"))]
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "noop"))]
        self.value.fetch_add(n, Ordering::Relaxed);
        #[cfg(feature = "noop")]
        let _ = n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        #[cfg(not(feature = "noop"))]
        return self.value.load(Ordering::Relaxed);
        #[cfg(feature = "noop")]
        0
    }
}

/// A lock-free `f64` cell: the most recent [`Gauge::set`] wins.
///
/// The value is stored as raw bits in an atomic `u64`, so concurrent reads
/// always observe some previously written value (never a torn one).
#[derive(Debug, Default)]
pub struct Gauge {
    #[cfg(not(feature = "noop"))]
    bits: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at `0.0`.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Stores a new value.
    #[inline]
    pub fn set(&self, value: f64) {
        #[cfg(not(feature = "noop"))]
        self.bits.store(value.to_bits(), Ordering::Relaxed);
        #[cfg(feature = "noop")]
        let _ = value;
    }

    /// The most recently stored value.
    pub fn get(&self) -> f64 {
        #[cfg(not(feature = "noop"))]
        return f64::from_bits(self.bits.load(Ordering::Relaxed));
        #[cfg(feature = "noop")]
        0.0
    }
}

/// A fixed-bucket log₂ histogram of `u64` samples.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))` (bucket 0 also holds
/// zero), so resolution is a constant factor of two at every magnitude —
/// the right shape for latencies, where nanoseconds and milliseconds must
/// coexist in one distribution. Recording is two relaxed atomic adds
/// (bucket + sum) and one for the total count; there is no lock, no
/// allocation, and no clamping (the bucket range covers all of `u64`).
#[derive(Debug)]
pub struct Histogram {
    #[cfg(not(feature = "noop"))]
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    #[cfg(not(feature = "noop"))]
    count: AtomicU64,
    #[cfg(not(feature = "noop"))]
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            #[cfg(not(feature = "noop"))]
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            #[cfg(not(feature = "noop"))]
            count: AtomicU64::new(0),
            #[cfg(not(feature = "noop"))]
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        #[cfg(not(feature = "noop"))]
        {
            self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(value, Ordering::Relaxed);
        }
        #[cfg(feature = "noop")]
        let _ = value;
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        #[cfg(not(feature = "noop"))]
        return self.count.load(Ordering::Relaxed);
        #[cfg(feature = "noop")]
        0
    }

    /// Sum of all recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        #[cfg(not(feature = "noop"))]
        return self.sum.load(Ordering::Relaxed);
        #[cfg(feature = "noop")]
        0
    }

    /// A point-in-time copy of the distribution. Per-field consistent; the
    /// fields may disagree by samples recorded mid-snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        #[cfg(not(feature = "noop"))]
        {
            let buckets: Vec<(usize, u64)> = self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((i, n))
                })
                .collect();
            HistogramSnapshot {
                count: self.count(),
                sum: self.sum(),
                buckets,
            }
        }
        #[cfg(feature = "noop")]
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: Vec::new(),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], sparse over non-empty buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// `(bucket index, sample count)` for every non-empty bucket, in
    /// ascending bucket order. Bounds come from [`bucket_bounds`].
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`q` clamped to `[0, 1]`), or `0` when empty. A factor-of-two
    /// over-approximation by construction — good enough for "p99 is tens of
    /// microseconds", which is what a log₂ histogram is for.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= target {
                return bucket_bounds(i).1;
            }
        }
        self.buckets.last().map_or(0, |&(i, _)| bucket_bounds(i).1)
    }

    /// Adds another snapshot's samples into this one, bucket by bucket.
    /// `count` and `sum` use wrapping arithmetic (matching the live
    /// histogram's wrapping `sum`), and the sparse bucket list stays in
    /// ascending bucket order. Commutative and associative, so merging a
    /// set of per-shard snapshots yields the same distribution regardless
    /// of merge order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia < ib {
                        merged.push((ia, na));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, nb));
                        b.next();
                    } else {
                        merged.push((ia, na.wrapping_add(nb)));
                        a.next();
                        b.next();
                    }
                }
                (Some(_), None) => {
                    merged.extend(a.by_ref().copied());
                    break;
                }
                (None, Some(_)) => {
                    merged.extend(b.by_ref().copied());
                    break;
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_and_reads() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        if crate::enabled() {
            assert_eq!(c.get(), 42);
        } else {
            assert_eq!(c.get(), 0);
        }
    }

    #[test]
    fn gauge_latest_wins() {
        let g = Gauge::new();
        g.set(1.5);
        g.set(-2.25);
        if crate::enabled() {
            assert_eq!(g.get(), -2.25);
        } else {
            assert_eq!(g.get(), 0.0);
        }
    }

    #[test]
    fn bucket_bounds_are_powers_of_two() {
        assert_eq!(bucket_bounds(0), (0, 2));
        assert_eq!(bucket_bounds(1), (2, 4));
        assert_eq!(bucket_bounds(10), (1 << 10, 1 << 11));
        assert_eq!(bucket_bounds(63), (1 << 63, u64::MAX));
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 7);
        // 0,1 -> bucket 0; 2,3 -> bucket 1; 1023 -> bucket 9;
        // 1024 -> bucket 10; u64::MAX -> bucket 63.
        assert_eq!(snap.buckets, vec![(0, 2), (1, 2), (9, 1), (10, 1), (63, 1)]);
        assert!(snap.mean() > 0.0);
        assert_eq!(snap.quantile_upper_bound(0.0), 2);
        assert_eq!(snap.quantile_upper_bound(1.0), u64::MAX);
    }

    #[test]
    fn quantile_of_empty_snapshot_is_zero() {
        // Directly on the snapshot so this holds under `noop` too.
        let empty = HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: Vec::new(),
        };
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0, f64::NAN] {
            assert_eq!(empty.quantile_upper_bound(q), 0, "q={q}");
        }
    }

    #[test]
    fn quantile_extremes_and_single_bucket() {
        // A single-bucket distribution answers every quantile with that
        // bucket's upper bound — including the q=0.0 floor (the target
        // rank is floored at 1 so "the 0th sample" still means "the
        // smallest recorded sample's bucket", not a phantom rank).
        let single = HistogramSnapshot {
            count: 5,
            sum: 5 * 700,
            buckets: vec![(9, 5)],
        };
        for q in [0.0, 0.25, 0.5, 1.0, 7.0] {
            assert_eq!(single.quantile_upper_bound(q), 1 << 10, "q={q}");
        }
        // Out-of-range q clamps rather than indexing past the ends.
        let two = HistogramSnapshot {
            count: 4,
            sum: 0,
            buckets: vec![(0, 2), (5, 2)],
        };
        assert_eq!(two.quantile_upper_bound(-3.0), 2);
        assert_eq!(two.quantile_upper_bound(0.5), 2);
        // Rank ceil(0.51 * 4) = 3 lands in the second bucket.
        assert_eq!(two.quantile_upper_bound(0.51), 1 << 6);
        assert_eq!(two.quantile_upper_bound(2.0), 1 << 6);
        // The top bucket's upper bound saturates at u64::MAX.
        let top = HistogramSnapshot {
            count: 1,
            sum: u64::MAX,
            buckets: vec![(63, 1)],
        };
        assert_eq!(top.quantile_upper_bound(1.0), u64::MAX);
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn concurrent_counts_merge_exactly() {
        let c = Counter::new();
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..1000u64 {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4_000);
        assert_eq!(h.count(), 4_000);
        assert_eq!(h.sum(), 4 * (999 * 1000 / 2));
    }

    #[cfg(feature = "noop")]
    #[test]
    fn noop_histogram_stays_empty() {
        let h = Histogram::new();
        h.record(123);
        assert_eq!(h.count(), 0);
        assert_eq!(h.snapshot().buckets, Vec::new());
        assert_eq!(h.snapshot().quantile_upper_bound(0.5), 0);
    }
}
