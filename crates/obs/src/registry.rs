//! A directory of named metrics with snapshot-based export.

use crate::export;
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A directory of metrics under hierarchical dot-separated names
/// (`engine.cache.hits`, `par.worker.busy_ns`).
///
/// Lookup-or-create goes through a mutex, so callers hold on to the returned
/// `Arc` rather than re-resolving names on hot paths; recording through the
/// `Arc` is lock-free. A name resolves to the kind it was first registered
/// as — asking for the same name as a different kind returns a fresh
/// *detached* instance (recorded values go nowhere visible) instead of
/// panicking, because observability must never take the process down.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry, created on first use. Components that are
    /// not handed an explicit registry (the parallel runtime, builders)
    /// record here; `minskew stats` and the exporters read it.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The counter registered under `name`, created at zero if absent. If
    /// `name` is already a gauge or histogram, returns a detached counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.lock();
        let metric = map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())));
        match metric {
            Metric::Counter(c) => Arc::clone(c),
            _ => Arc::new(Counter::new()),
        }
    }

    /// The gauge registered under `name`, created at `0.0` if absent. If
    /// `name` is already another kind, returns a detached gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.lock();
        let metric = map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())));
        match metric {
            Metric::Gauge(g) => Arc::clone(g),
            _ => Arc::new(Gauge::new()),
        }
    }

    /// The histogram registered under `name`, created empty if absent. If
    /// `name` is already another kind, returns a detached histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.lock();
        let metric = map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())));
        match metric {
            Metric::Histogram(h) => Arc::clone(h),
            _ => Arc::new(Histogram::new()),
        }
    }

    /// A point-in-time copy of every registered metric, names sorted.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let map = self.lock();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => histograms.push((name.clone(), h.snapshot())),
            }
        }
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// The registry as JSON (schema `minskew-obs/v1`, pinned by a golden
    /// test). Names sort lexicographically; non-finite gauges export as
    /// `null`.
    pub fn to_json(&self) -> String {
        export::to_json(&self.snapshot())
    }

    /// The registry as aligned human-readable text, one metric per line.
    pub fn to_text(&self) -> String {
        export::to_text(&self.snapshot())
    }
}

/// A point-in-time copy of a [`Registry`]: every metric's name and value,
/// grouped by kind, names in ascending lexicographic order within each
/// group.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, f64)>,
    /// `(name, snapshot)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl RegistrySnapshot {
    /// The snapshot as JSON (schema `minskew-obs/v1`, pinned by a golden
    /// test). Names sort lexicographically; non-finite gauges export as
    /// `null`.
    pub fn to_json(&self) -> String {
        export::to_json(self)
    }

    /// The snapshot as aligned human-readable text, one metric per line.
    pub fn to_text(&self) -> String {
        export::to_text(self)
    }

    /// Merges another snapshot into this one and restores the sorted-name
    /// invariant. Metrics sharing a name across the two snapshots
    /// coalesce into one row — counters add (wrapping, matching the live
    /// counter's representation), histograms add bucket by bucket
    /// ([`HistogramSnapshot::merge`]), and gauges keep the larger value by
    /// IEEE total order (a commutative high-water rule: last-write-wins
    /// has no meaning across concurrent shards). Every combiner is
    /// commutative and associative, so folding per-shard snapshots in any
    /// order produces byte-identical exports — pinned by the proptest
    /// suite in `tests/golden_metrics.rs`.
    pub fn merge(&mut self, other: RegistrySnapshot) {
        fn coalesce<T>(
            dst: &mut Vec<(String, T)>,
            src: Vec<(String, T)>,
            mut add: impl FnMut(&mut T, T),
        ) {
            for (name, value) in src {
                match dst.binary_search_by(|(n, _)| n.as_str().cmp(&name)) {
                    Ok(i) => add(&mut dst[i].1, value),
                    Err(i) => dst.insert(i, (name, value)),
                }
            }
        }
        // Self-merges from older snapshots may predate the sorted-name
        // invariant; re-establish it before binary searching.
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        coalesce(&mut self.counters, other.counters, |a, b| {
            *a = a.wrapping_add(b);
        });
        coalesce(&mut self.gauges, other.gauges, |a, b| {
            if b.total_cmp(a) == std::cmp::Ordering::Greater {
                *a = b;
            }
        });
        coalesce(&mut self.histograms, other.histograms, |a, b| a.merge(&b));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_instance() {
        let r = Registry::new();
        let a = r.counter("x.calls");
        let b = r.counter("x.calls");
        a.inc();
        b.add(2);
        if crate::enabled() {
            assert_eq!(a.get(), 3);
        }
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn kind_mismatch_returns_detached_instance() {
        let r = Registry::new();
        let c = r.counter("x");
        c.add(7);
        let g = r.gauge("x");
        g.set(1.0);
        let h = r.histogram("x");
        h.record(1);
        // The original counter is untouched and still registered.
        if crate::enabled() {
            assert_eq!(c.get(), 7);
            assert_eq!(r.snapshot().counters, vec![("x".to_owned(), 7)]);
        }
        assert!(r.snapshot().gauges.is_empty());
        assert!(r.snapshot().histograms.is_empty());
    }

    #[test]
    fn snapshot_sorts_names() {
        let r = Registry::new();
        r.counter("b");
        r.counter("a");
        r.counter("c");
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = Registry::global().counter("test.registry.global");
        let b = Registry::global().counter("test.registry.global");
        assert!(Arc::ptr_eq(&a, &b));
    }
}
