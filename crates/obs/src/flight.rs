//! The flight recorder: a fixed-capacity lock-free ring of structured
//! [`QueryRecord`]s capturing the queries worth a second look — slow ones
//! (latency threshold), wrong ones (residual threshold, fed by the accuracy
//! monitor's replay), and a 1-in-N sample of everything else.
//!
//! ## Ring semantics (safe-code seqlock)
//!
//! Each slot is a stamp word plus a fixed array of payload words, all
//! `AtomicU64` — no `unsafe`, no locks. A writer claims a slot by bumping
//! the global head (`fetch_add`, so claims never collide), stores the
//! odd stamp `2·seq + 1`, writes the payload words relaxed, then stores the
//! even stamp `2·seq + 2`. A reader snapshots the stamp, skips empty (`0`)
//! or in-progress (odd) slots, reads the payload, and re-reads the stamp:
//! any concurrent overwrite changes the stamp (seq is globally unique and
//! monotone), so a torn read is always detected and dropped. Torn *words*
//! are impossible — every payload word is itself atomic — so the only
//! failure mode is a skipped record, never a corrupt one.
//!
//! Writers therefore never block, never allocate, and never wait on
//! readers; recording costs a handful of relaxed stores. Draining is
//! best-effort by design: records overwritten mid-drain are silently
//! dropped, which is the correct trade for a diagnostics buffer on a hot
//! serving path.
//!
//! ## Bit-invisibility
//!
//! Recording happens strictly *after* an estimate is computed and only
//! touches this ring's atomics; it can never perturb an estimate, the
//! query cache, or the statistics. Under `--features noop` the entire ring
//! compiles away (capacity 0, every call a no-op), which the trace
//! differential suite uses to pin that estimates and encoded stats are
//! byte-identical with the recorder on, off, and sampling every query.
//!
//! Drained output is pinned JSONL, one record per line, schema
//! `minskew-obs/flight-v1`.

#[cfg(not(feature = "noop"))]
use std::sync::atomic::{AtomicU64, Ordering};

use crate::export::{json_escape, json_f64};

/// Why a query was captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightTrigger {
    /// Sampled-path latency at or above the slow threshold.
    Slow,
    /// Audit replay found a relative residual above the wrong threshold.
    Wrong,
    /// 1-in-N sample, captured regardless of latency.
    Sampled,
}

impl FlightTrigger {
    /// Stable wire label (pinned by the `flight-v1` schema).
    pub fn label(self) -> &'static str {
        match self {
            FlightTrigger::Slow => "slow",
            FlightTrigger::Wrong => "wrong",
            FlightTrigger::Sampled => "sampled",
        }
    }

    #[cfg(not(feature = "noop"))]
    fn from_code(code: u64) -> FlightTrigger {
        match code {
            0 => FlightTrigger::Slow,
            1 => FlightTrigger::Wrong,
            _ => FlightTrigger::Sampled,
        }
    }
}

/// Maximum trace-id bytes a record retains (longer ids are truncated).
pub const TID_BYTES: usize = 16;

/// One captured query: what was asked, what was answered, and why it was
/// recorded. The wire trace id (`TID=<token>`) travels with the record so
/// an operator can join a flight line back to the client that sent it.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRecord {
    /// Why this query was captured.
    pub trigger: FlightTrigger,
    /// Client-supplied trace id (empty when none); at most
    /// [`TID_BYTES`] bytes survive the ring.
    pub tid: String,
    /// The query rectangle as `[x1, y1, x2, y2]`.
    pub query: [f64; 4],
    /// The estimate that was served.
    pub estimate: f64,
    /// The exact count, when the capture site knows it (audit replay);
    /// `None` on the serving path.
    pub exact: Option<f64>,
    /// Wall latency of the estimate in nanoseconds (0 when the capture
    /// site did not time it).
    pub latency_ns: u64,
    /// Statistics generation that served the estimate.
    pub generation: u64,
}

impl QueryRecord {
    /// One pinned `minskew-obs/flight-v1` JSONL line (no trailing newline).
    /// Non-finite floats serialise as `null` so the line is always valid
    /// JSON.
    pub fn to_json(&self, seq: u64) -> String {
        let mut tid = self.tid.as_str();
        if tid.len() > TID_BYTES {
            let mut end = TID_BYTES;
            while !tid.is_char_boundary(end) {
                end -= 1;
            }
            tid = &tid[..end];
        }
        format!(
            "{{\"schema\":\"minskew-obs/flight-v1\",\"seq\":{seq},\"trigger\":\"{}\",\
             \"tid\":\"{}\",\"query\":[{},{},{},{}],\"estimate\":{},\"exact\":{},\
             \"latency_ns\":{},\"generation\":{}}}",
            self.trigger.label(),
            json_escape(tid),
            json_f64(self.query[0]),
            json_f64(self.query[1]),
            json_f64(self.query[2]),
            json_f64(self.query[3]),
            json_f64(self.estimate),
            self.exact.map_or_else(|| String::from("null"), json_f64),
            self.latency_ns,
            self.generation,
        )
    }
}

/// Payload words per slot: flags, 4 query coords, estimate, exact,
/// latency, generation, 2 trace-id words.
#[cfg(not(feature = "noop"))]
const WORDS: usize = 11;

#[cfg(not(feature = "noop"))]
struct Slot {
    /// `0` = never written; odd = write in progress; `2·seq + 2` = record
    /// `seq` committed.
    stamp: AtomicU64,
    words: [AtomicU64; WORDS],
}

#[cfg(not(feature = "noop"))]
impl Slot {
    fn new() -> Slot {
        Slot {
            stamp: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

#[cfg(not(feature = "noop"))]
fn encode(record: &QueryRecord) -> [u64; WORDS] {
    let mut tid = [0u8; TID_BYTES];
    let take = record.tid.len().min(TID_BYTES);
    tid[..take].copy_from_slice(&record.tid.as_bytes()[..take]);
    let trigger = match record.trigger {
        FlightTrigger::Slow => 0u64,
        FlightTrigger::Wrong => 1,
        FlightTrigger::Sampled => 2,
    };
    [
        trigger | (u64::from(record.exact.is_some()) << 8),
        record.query[0].to_bits(),
        record.query[1].to_bits(),
        record.query[2].to_bits(),
        record.query[3].to_bits(),
        record.estimate.to_bits(),
        record.exact.unwrap_or(0.0).to_bits(),
        record.latency_ns,
        record.generation,
        u64::from_le_bytes(tid[..8].try_into().unwrap_or([0; 8])),
        u64::from_le_bytes(tid[8..].try_into().unwrap_or([0; 8])),
    ]
}

#[cfg(not(feature = "noop"))]
fn decode(words: &[u64; WORDS]) -> QueryRecord {
    let mut tid = [0u8; TID_BYTES];
    tid[..8].copy_from_slice(&words[9].to_le_bytes());
    tid[8..].copy_from_slice(&words[10].to_le_bytes());
    let len = tid.iter().position(|&b| b == 0).unwrap_or(TID_BYTES);
    QueryRecord {
        trigger: FlightTrigger::from_code(words[0] & 0xff),
        tid: String::from_utf8_lossy(&tid[..len]).into_owned(),
        query: [
            f64::from_bits(words[1]),
            f64::from_bits(words[2]),
            f64::from_bits(words[3]),
            f64::from_bits(words[4]),
        ],
        estimate: f64::from_bits(words[5]),
        exact: ((words[0] >> 8) & 1 == 1).then(|| f64::from_bits(words[6])),
        latency_ns: words[7],
        generation: words[8],
    }
}

/// The fixed-capacity lock-free ring of [`QueryRecord`]s. Shared by `Arc`;
/// every method takes `&self`. Capacity `0` disables recording entirely.
pub struct FlightRecorder {
    #[cfg(not(feature = "noop"))]
    head: AtomicU64,
    #[cfg(not(feature = "noop"))]
    slots: Vec<Slot>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity())
            .field("total", &self.total())
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder holding the most recent `capacity` records (`0`
    /// disables it; under `noop` capacity is always 0).
    #[must_use]
    pub fn new(capacity: usize) -> FlightRecorder {
        #[cfg(feature = "noop")]
        let _ = capacity;
        FlightRecorder {
            #[cfg(not(feature = "noop"))]
            head: AtomicU64::new(0),
            #[cfg(not(feature = "noop"))]
            slots: (0..capacity).map(|_| Slot::new()).collect(),
        }
    }

    /// Slot count (0 when disabled or under `noop`).
    pub fn capacity(&self) -> usize {
        #[cfg(not(feature = "noop"))]
        {
            self.slots.len()
        }
        #[cfg(feature = "noop")]
        {
            0
        }
    }

    /// Records ever captured (including those since overwritten).
    pub fn total(&self) -> u64 {
        #[cfg(not(feature = "noop"))]
        {
            self.head.load(Ordering::Relaxed)
        }
        #[cfg(feature = "noop")]
        {
            0
        }
    }

    /// Captures one record. Lock-free, allocation-free, wait-free for
    /// writers; a no-op when capacity is 0.
    pub fn record(&self, record: &QueryRecord) {
        #[cfg(not(feature = "noop"))]
        {
            if self.slots.is_empty() {
                return;
            }
            let seq = self.head.fetch_add(1, Ordering::Relaxed);
            let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
            let words = encode(record);
            slot.stamp
                .store(seq.wrapping_mul(2).wrapping_add(1), Ordering::Release);
            for (dst, &src) in slot.words.iter().zip(words.iter()) {
                dst.store(src, Ordering::Relaxed);
            }
            slot.stamp
                .store(seq.wrapping_mul(2).wrapping_add(2), Ordering::Release);
        }
        #[cfg(feature = "noop")]
        let _ = record;
    }

    /// The most recent `max` committed records, oldest first, each with
    /// its sequence number. Best-effort: slots overwritten mid-read are
    /// skipped, never returned torn.
    pub fn recent(&self, max: usize) -> Vec<(u64, QueryRecord)> {
        #[cfg(not(feature = "noop"))]
        {
            let head = self.head.load(Ordering::Acquire);
            let cap = self.slots.len() as u64;
            if cap == 0 || head == 0 || max == 0 {
                return Vec::new();
            }
            let span = head.min(cap).min(max as u64);
            let mut out = Vec::with_capacity(span as usize);
            for seq in (head - span)..head {
                let slot = &self.slots[(seq % cap) as usize];
                let s1 = slot.stamp.load(Ordering::Acquire);
                if s1 != seq.wrapping_mul(2).wrapping_add(2) {
                    continue; // empty, in progress, or already overwritten
                }
                let mut words = [0u64; WORDS];
                for (dst, src) in words.iter_mut().zip(slot.words.iter()) {
                    *dst = src.load(Ordering::Relaxed);
                }
                if slot.stamp.load(Ordering::Acquire) != s1 {
                    continue; // overwritten while reading: drop, never tear
                }
                out.push((seq, decode(&words)));
            }
            out
        }
        #[cfg(feature = "noop")]
        {
            let _ = max;
            Vec::new()
        }
    }

    /// Drains the most recent `max` records as pinned
    /// `minskew-obs/flight-v1` JSONL, oldest first, one record per line
    /// (empty string when nothing is recorded). Non-destructive: the ring
    /// keeps its contents.
    pub fn to_jsonl(&self, max: usize) -> String {
        let mut out = String::new();
        for (seq, record) in self.recent(max) {
            out.push_str(&record.to_json(seq));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u64) -> QueryRecord {
        QueryRecord {
            trigger: FlightTrigger::Slow,
            tid: format!("t{i}"),
            query: [i as f64, 0.0, i as f64 + 1.0, 1.0],
            estimate: i as f64 * 0.5,
            exact: i.is_multiple_of(2).then_some(i as f64),
            latency_ns: i * 100,
            generation: i,
        }
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn round_trips_records_in_order() {
        let ring = FlightRecorder::new(4);
        for i in 0..3 {
            ring.record(&rec(i));
        }
        let got = ring.recent(10);
        assert_eq!(got.len(), 3);
        for (i, (seq, r)) in got.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(*r, rec(i as u64));
        }
        assert_eq!(ring.total(), 3);
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn wraps_keeping_newest() {
        let ring = FlightRecorder::new(4);
        for i in 0..10 {
            ring.record(&rec(i));
        }
        let got = ring.recent(100);
        let seqs: Vec<u64> = got.iter().map(|&(s, _)| s).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(got[0].1, rec(6));
        // `recent(max)` keeps the newest `max`, oldest first.
        let last_two: Vec<u64> = ring.recent(2).iter().map(|&(s, _)| s).collect();
        assert_eq!(last_two, vec![8, 9]);
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn zero_capacity_records_nothing() {
        let ring = FlightRecorder::new(0);
        ring.record(&rec(1));
        assert_eq!(ring.total(), 0);
        assert!(ring.recent(10).is_empty());
        assert_eq!(ring.to_jsonl(10), "");
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn long_tids_truncate_and_survive() {
        let ring = FlightRecorder::new(2);
        let mut r = rec(0);
        r.tid = "abcdefghijklmnopqrstuvwxyz".to_string();
        ring.record(&r);
        let got = ring.recent(1);
        assert_eq!(got[0].1.tid, "abcdefghijklmnop");
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn jsonl_lines_are_pinned() {
        let ring = FlightRecorder::new(2);
        ring.record(&QueryRecord {
            trigger: FlightTrigger::Wrong,
            tid: "req-1".to_string(),
            query: [0.0, 0.5, 2.0, 1.5],
            estimate: 3.25,
            exact: Some(4.0),
            latency_ns: 1200,
            generation: 7,
        });
        ring.record(&QueryRecord {
            trigger: FlightTrigger::Sampled,
            tid: String::new(),
            query: [0.0, 0.0, 1.0, f64::NAN],
            estimate: f64::INFINITY,
            exact: None,
            latency_ns: 0,
            generation: 0,
        });
        let jsonl = ring.to_jsonl(10);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(
            lines[0],
            "{\"schema\":\"minskew-obs/flight-v1\",\"seq\":0,\"trigger\":\"wrong\",\
             \"tid\":\"req-1\",\"query\":[0,0.5,2,1.5],\"estimate\":3.25,\"exact\":4,\
             \"latency_ns\":1200,\"generation\":7}"
        );
        // Non-finite floats must serialise as null, never bare tokens.
        assert_eq!(
            lines[1],
            "{\"schema\":\"minskew-obs/flight-v1\",\"seq\":1,\"trigger\":\"sampled\",\
             \"tid\":\"\",\"query\":[0,0,1,null],\"estimate\":null,\"exact\":null,\
             \"latency_ns\":0,\"generation\":0}"
        );
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn concurrent_writers_never_tear() {
        use std::sync::Arc;
        let ring = Arc::new(FlightRecorder::new(8));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let ring = Arc::clone(&ring);
                scope.spawn(move || {
                    for i in 0..500 {
                        ring.record(&rec(t * 1_000 + i));
                    }
                });
            }
            for _ in 0..200 {
                for (_, r) in ring.recent(8) {
                    // A torn record would mix fields from two writers;
                    // every field of `rec(i)` is derived from `i`, so
                    // consistency is checkable.
                    let i = r.generation;
                    assert_eq!(r, rec(i));
                }
            }
        });
        assert_eq!(ring.total(), 2_000);
    }

    #[test]
    #[cfg(feature = "noop")]
    fn noop_disables_everything() {
        let ring = FlightRecorder::new(64);
        ring.record(&rec(1));
        assert_eq!(ring.capacity(), 0);
        assert_eq!(ring.total(), 0);
        assert!(ring.recent(10).is_empty());
        assert_eq!(ring.to_jsonl(10), "");
    }
}
