//! JSON and human-readable text emitters for registry snapshots.
//!
//! The JSON schema is versioned (`minskew-obs/v1`) and pinned byte-for-byte
//! by a golden test at the workspace root, so field names, ordering, and
//! histogram bucket bounds cannot drift silently. Everything is emitted by
//! hand — no serialization crate — which is exactly why the golden pin
//! matters.

use crate::metrics::bucket_bounds;
use crate::registry::RegistrySnapshot;
use std::fmt::Write as _;

/// Escapes `s` for a JSON string literal (quotes, backslash, control chars).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A gauge value as a JSON number, or `null` when non-finite (JSON has no
/// Inf/NaN).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// The snapshot as schema-versioned JSON. Keys within each section follow
/// the snapshot's (sorted) order; histograms list only non-empty buckets,
/// each with its `[lo, hi)` bounds inlined so consumers never need the
/// bucketing formula.
pub fn to_json(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"minskew-obs/v1\",\n  \"counters\": {");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{}\": {value}", json_escape(name));
    }
    if !snap.counters.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"gauges\": {");
    for (i, (name, value)) in snap.gauges.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    \"{}\": {}",
            json_escape(name),
            json_f64(*value)
        );
    }
    if !snap.gauges.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"histograms\": {");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
            json_escape(name),
            h.count,
            h.sum
        );
        for (j, &(bucket, count)) in h.buckets.iter().enumerate() {
            let (lo, hi) = bucket_bounds(bucket);
            let sep = if j == 0 { "" } else { ", " };
            let _ = write!(
                out,
                "{sep}{{\"lo\": {lo}, \"hi\": {hi}, \"count\": {count}}}"
            );
        }
        out.push_str("]}");
    }
    if !snap.histograms.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("}\n}\n");
    out
}

/// The snapshot as human-readable text: one metric per line, histograms
/// summarised by count / mean / p50 / p99 upper bounds.
pub fn to_text(snap: &RegistrySnapshot) -> String {
    let width = snap
        .counters
        .iter()
        .map(|(n, _)| n.len())
        .chain(snap.gauges.iter().map(|(n, _)| n.len()))
        .chain(snap.histograms.iter().map(|(n, _)| n.len()))
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let _ = writeln!(out, "{name:width$}  {value}");
    }
    for (name, value) in &snap.gauges {
        let _ = writeln!(out, "{name:width$}  {value:.6}");
    }
    for (name, h) in &snap.histograms {
        let _ = writeln!(
            out,
            "{name:width$}  count={} mean={:.1} p50<{} p99<{}",
            h.count,
            h.mean(),
            h.quantile_upper_bound(0.5),
            h.quantile_upper_bound(0.99),
        );
    }
    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_f64_non_finite_is_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn empty_registry_exports_empty_sections() {
        let r = Registry::new();
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"minskew-obs/v1\""));
        assert!(json.contains("\"counters\": {}"));
        assert_eq!(r.to_text(), "(no metrics recorded)\n");
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn populated_registry_round_trips_values() {
        let r = Registry::new();
        r.counter("c.one").add(5);
        r.gauge("g.err").set(0.25);
        r.histogram("h.ns").record(1024);
        let json = r.to_json();
        assert!(json.contains("\"c.one\": 5"));
        assert!(json.contains("\"g.err\": 0.25"));
        assert!(json.contains("\"lo\": 1024, \"hi\": 2048, \"count\": 1"));
        let text = r.to_text();
        assert!(text.contains("c.one"));
        assert!(text.contains("count=1"));
    }
}
