//! Shared machinery for the experiment benches.
//!
//! Every table and figure of the paper's evaluation section has a
//! corresponding `harness = false` bench target in `benches/`; this library
//! holds what they share — dataset construction at the configured scale,
//! the full technique roster, and table printing.
//!
//! # Scale control
//!
//! The defaults reproduce the paper's parameters (414 442-rectangle NJ-road
//! stand-in, 40 000-rectangle Charminar, 10 000 queries per point). Set
//! `MINSKEW_QUICK=1` to divide dataset sizes by 10 and query counts by 10
//! for a fast smoke run of the whole suite.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use minskew_core::{
    build_equi_area, build_equi_count, build_rtree_partitioning, build_uniform, FractalEstimator,
    MinSkewBuilder, RTreeBuildMethod, RTreePartitioningOptions, SamplingEstimator,
    SpatialEstimator,
};
use minskew_data::Dataset;
use minskew_datagen::{charminar_with, RoadNetworkSpec};
use minskew_workload::{evaluate, ErrorReport, GroundTruth, QueryWorkload};

/// Experiment scale, derived from the environment.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Divisor applied to dataset cardinalities.
    pub data_divisor: usize,
    /// Number of queries per experiment point.
    pub queries: usize,
}

impl Scale {
    /// Reads the scale from `MINSKEW_QUICK`.
    pub fn from_env() -> Scale {
        if std::env::var("MINSKEW_QUICK").is_ok_and(|v| v != "0" && !v.is_empty()) {
            Scale {
                data_divisor: 10,
                queries: 1_000,
            }
        } else {
            Scale {
                data_divisor: 1,
                queries: QueryWorkload::PAPER_QUERY_COUNT,
            }
        }
    }
}

/// The NJ-Road stand-in dataset at the configured scale (paper: 414 442
/// segment bounding boxes).
pub fn nj_road(scale: Scale) -> Dataset {
    let spec = RoadNetworkSpec {
        segments: 414_442 / scale.data_divisor,
        ..RoadNetworkSpec::default()
    };
    spec.generate(0xBE11_1AB5)
}

/// The Charminar dataset at the configured scale (paper: 40 000 rects).
pub fn charminar_scaled(scale: Scale) -> Dataset {
    charminar_with(40_000 / scale.data_divisor, 0xC4A2)
}

/// Default Min-Skew region count used across §5.5 ("the number of regions
/// used by the Min-Skew construction algorithm was set to 10,000").
pub const DEFAULT_REGIONS: usize = 10_000;

/// Builds the full §5 technique roster at a bucket budget.
///
/// Order matches the paper's plots: Min-Skew, Equi-Count, Equi-Area,
/// R-Tree, Sample, Fractal, Uniform.
pub fn all_techniques(data: &Dataset, buckets: usize) -> Vec<Box<dyn SpatialEstimator>> {
    vec![
        Box::new(
            MinSkewBuilder::new(buckets)
                .regions(DEFAULT_REGIONS)
                .build(data),
        ),
        Box::new(build_equi_count(data, buckets)),
        Box::new(build_equi_area(data, buckets)),
        Box::new(build_rtree_partitioning(
            data,
            buckets,
            RTreePartitioningOptions {
                // Error experiments need not pay insertion time.
                method: RTreeBuildMethod::StrBulk,
                ..Default::default()
            },
        )),
        Box::new(SamplingEstimator::build(data, buckets, 0x5A11)),
        Box::new(FractalEstimator::build(data)),
        Box::new(build_uniform(data)),
    ]
}

/// Runs one experiment point: evaluates `estimators` on a fresh workload.
pub fn run_point(
    data: &Dataset,
    truth: &GroundTruth,
    estimators: &[Box<dyn SpatialEstimator>],
    qsize: f64,
    queries: usize,
    seed: u64,
) -> Vec<ErrorReport> {
    let w = QueryWorkload::generate(data, qsize, queries, seed);
    let counts = truth.counts(w.queries());
    estimators
        .iter()
        .map(|e| evaluate(e.as_ref(), &w, &counts))
        .collect()
}

/// Prints a markdown-style table: first column label plus one column per
/// technique, values as percentages.
pub fn print_error_table(title: &str, col0: &str, names: &[String], rows: &[(String, Vec<f64>)]) {
    println!("\n## {title}\n");
    print!("| {col0:<14} |");
    for n in names {
        print!(" {n:>10} |");
    }
    println!();
    print!("|{}|", "-".repeat(16));
    for _ in names {
        print!("{}|", "-".repeat(12));
    }
    println!();
    for (label, vals) in rows {
        print!("| {label:<14} |");
        for v in vals {
            print!(" {:>9.1}% |", v * 100.0);
        }
        println!();
    }
    println!();
}

/// Wall-clock helper for construction-time tables.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_reads_env() {
        // Note: avoids mutating the process env; just checks the default.
        let s = Scale {
            data_divisor: 10,
            queries: 1_000,
        };
        assert_eq!(s.data_divisor, 10);
        let def = Scale::from_env();
        assert!(def.queries == 1_000 || def.queries == 10_000);
    }

    #[test]
    fn roster_has_all_seven_techniques() {
        let ds = charminar_with(1_000, 1);
        let ts = all_techniques(&ds, 20);
        let names: Vec<&str> = ts.iter().map(|t| t.name()).collect();
        assert_eq!(
            names,
            vec![
                "Min-Skew",
                "Equi-Count",
                "Equi-Area",
                "R-Tree",
                "Sample",
                "Fractal",
                "Uniform"
            ]
        );
    }

    #[test]
    fn run_point_produces_report_per_technique() {
        let ds = charminar_with(2_000, 2);
        let truth = GroundTruth::index(&ds);
        let ts = all_techniques(&ds, 20);
        let reports = run_point(&ds, &truth, &ts, 0.1, 100, 3);
        assert_eq!(reports.len(), ts.len());
        for r in &reports {
            assert!(r.avg_relative_error.is_finite());
        }
    }
}
