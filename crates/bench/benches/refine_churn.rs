//! Long-horizon churn benchmark for the online self-tuning histogram.
//!
//! The paper builds its histograms once, offline (§4); this extension asks
//! what happens over a long horizon of data drift when the optimizer's
//! statistics are (a) frozen, (b) incrementally patched by the staleness
//! tracker's insert/delete absorption, or (c) repaired online from the
//! accuracy monitor's replayed (query, exact, estimate) feedback — the
//! query-driven refine loop.
//!
//! Drift schedule: each epoch parks a hotspot of new rectangles at a point
//! that orbits the dataset's extent and deletes the oldest resident rows,
//! so both the density surface and the total cardinality move. Each epoch
//! serves a query workload drawn over the *current* data (feeding the
//! accuracy reservoirs), runs one maintenance pass per arm, and scores all
//! arms on a held-out workload against exact counts — the paper's §5
//! error metric, `Σ|r − e| / Σ r`.
//!
//! Cost accounting: every refine pass is timed, and a full re-`ANALYZE`
//! over the horizon-end table is timed for comparison — the refine loop
//! only earns its keep if a bounded step costs a small fraction of the
//! rebuild it displaces.
//!
//! Writes machine-readable results to `BENCH_refine.json` at the workspace
//! root. `MINSKEW_QUICK=1` shrinks the dataset and horizon for smoke runs.

use std::path::Path;

use minskew_bench::{charminar_scaled, time_it, Scale};
use minskew_core::{MinSkewBuilder, SpatialEstimator};
use minskew_data::Dataset;
use minskew_engine::{MaintenanceAction, MaintenanceMode, RowId, SpatialTable, TableOptions};
use minskew_geom::Rect;
use minskew_workload::QueryWorkload;

/// Per-epoch measurements for every arm.
struct EpochRow {
    epoch: usize,
    rows: usize,
    err_static: f64,
    err_patch: f64,
    err_refine: f64,
    staleness_patch: f64,
    refine_passes: usize,
    refine_secs: f64,
}

/// The paper's §5 average relative error over a workload, denominator
/// floored at 1 so all-empty workloads stay finite.
fn paper_error(pairs: &[(f64, f64)]) -> f64 {
    let num: f64 = pairs.iter().map(|(r, e)| (r - e).abs()).sum();
    let den: f64 = pairs.iter().map(|(r, _)| *r).sum::<f64>().max(1.0);
    num / den
}

fn table(mode: MaintenanceMode) -> SpatialTable {
    SpatialTable::new(TableOptions {
        maintenance: mode,
        // Maintenance is what we measure; keep implicit auto-ANALYZE out.
        auto_analyze_threshold: None,
        accuracy_reservoir: 512,
        // An aggressive repair policy: engage maintenance as soon as the
        // audited error leaves the band a fresh build achieves (~0.1 on
        // Charminar at 100 buckets), not only on catastrophic drift.
        accuracy_drift_threshold: 0.15,
        ..TableOptions::default()
    })
}

fn main() {
    let scale = Scale::from_env();
    let quick = scale.data_divisor != 1;
    let data = charminar_scaled(scale);
    let epochs = if quick { 4 } else { 16 };
    let serve_queries = (scale.queries / 10).max(50);
    let eval_queries = (scale.queries / 20).max(50);
    let qsize = 0.05;

    // Arm a: the epoch-0 histogram, frozen for the whole horizon.
    let frozen = MinSkewBuilder::new(100).build(&data);
    // Arm b: incremental insert/delete patching only (maintenance off).
    let mut patch = table(MaintenanceMode::Off);
    // Arm c: the query-driven refine loop.
    let mut refine = table(MaintenanceMode::OnlineRefine);

    // Both live tables see identical mutations in identical order, so row
    // ids coincide; `resident` mirrors the live rows for exact counting.
    let mut resident: std::collections::VecDeque<(RowId, Rect)> =
        Vec::from_iter(data.rects().iter().map(|r| (patch.insert(*r), *r))).into();
    for (_, r) in &resident {
        refine.insert(*r);
    }
    patch.analyze();
    refine.analyze();

    let bbox = data.stats().mbr;
    let n0 = data.len();
    let hotspot_inserts = (n0 / 8).max(1);
    let deletes = (n0 / 16).max(1);
    let side = (bbox.width().min(bbox.height()) / 250.0).max(1e-9);

    eprintln!(
        "[refine] {} rects, {epochs} epochs, +{hotspot_inserts}/-{deletes} per epoch, \
         {serve_queries} served + {eval_queries} eval queries per epoch",
        n0
    );

    let mut rows: Vec<EpochRow> = Vec::new();
    let mut refine_secs_total = 0.0;
    let mut refine_passes_total = 0usize;

    for epoch in 0..epochs {
        // --- drift: an orbiting hotspot plus oldest-row deletions -------
        let angle = std::f64::consts::TAU * epoch as f64 / epochs as f64;
        let (cx, cy) = (
            bbox.lo.x + bbox.width() * (0.5 + 0.35 * angle.cos()),
            bbox.lo.y + bbox.height() * (0.5 + 0.35 * angle.sin()),
        );
        for i in 0..hotspot_inserts {
            let jitter = (i % 61) as f64 * side * 0.2;
            let r = Rect::new(
                cx + jitter,
                cy + jitter,
                cx + jitter + side,
                cy + jitter + side,
            );
            let id = patch.insert(r);
            refine.insert(r);
            resident.push_back((id, r));
        }
        for _ in 0..deletes.min(resident.len().saturating_sub(1)) {
            if let Some((id, _)) = resident.pop_front() {
                patch.delete(id);
                refine.delete(id);
            }
        }
        let live = Dataset::new(resident.iter().map(|(_, r)| *r).collect());

        // --- serve: feed both reservoirs from the current distribution --
        let served = QueryWorkload::generate(&live, qsize, serve_queries, 1_000 + epoch as u64);
        for q in served.queries() {
            let _ = patch.estimate(q);
            let _ = refine.estimate(q);
        }

        // --- maintain: audit-only for the patch arm, bounded refine
        // passes (stop at convergence) for the refine arm ----------------
        let _ = patch.maintain();
        let mut refine_passes = 0usize;
        let mut refine_secs = 0.0;
        for _ in 0..8 {
            let (report, secs) = time_it(|| refine.maintain());
            match report.action {
                MaintenanceAction::Refined(_) | MaintenanceAction::Reanalyzed => {
                    refine_passes += 1;
                    refine_secs += secs;
                }
                MaintenanceAction::None => break,
            }
        }
        refine_secs_total += refine_secs;
        refine_passes_total += refine_passes;

        // --- evaluate: held-out workload, exact counts by linear scan ---
        let eval = QueryWorkload::generate(&live, qsize, eval_queries, 9_000 + epoch as u64);
        let mut pairs_static = Vec::with_capacity(eval.len());
        let mut pairs_patch = Vec::with_capacity(eval.len());
        let mut pairs_refine = Vec::with_capacity(eval.len());
        for q in eval.queries() {
            let actual = resident.iter().filter(|(_, r)| r.intersects(q)).count() as f64;
            pairs_static.push((actual, frozen.estimate_count(q)));
            pairs_patch.push((actual, patch.estimate(q)));
            pairs_refine.push((actual, refine.estimate(q)));
        }
        let row = EpochRow {
            epoch,
            rows: resident.len(),
            err_static: paper_error(&pairs_static),
            err_patch: paper_error(&pairs_patch),
            err_refine: paper_error(&pairs_refine),
            staleness_patch: patch.stats_staleness().unwrap_or(f64::NAN),
            refine_passes,
            refine_secs,
        };
        eprintln!(
            "[refine] epoch {:>2}: static {:.3}, patch {:.3} (staleness {:.2}), \
             refine {:.3} ({} pass(es), {:.1} ms)",
            row.epoch,
            row.err_static,
            row.err_patch,
            row.staleness_patch,
            row.err_refine,
            row.refine_passes,
            row.refine_secs * 1e3,
        );
        rows.push(row);
    }

    // Full-rebuild cost reference at the horizon-end table, and the pure
    // repair cost from the engine's own instrumentation: a maintain pass =
    // accuracy audit (paid by every mode, Off included — it is the
    // monitor) + the refine step; `engine.maintenance.refine_ns` times the
    // step alone, which is what a rebuild-displacing repair must amortise.
    let metrics = refine.metrics();
    let refine_step_secs = metrics
        .histograms
        .iter()
        .find(|(name, _)| name == "engine.maintenance.refine_ns")
        .map_or(0.0, |(_, h)| h.sum as f64 / 1e9 / h.count.max(1) as f64);
    let (_, analyze_secs) = time_it(|| refine.analyze());
    let per_pass_secs = refine_secs_total / refine_passes_total.max(1) as f64;
    let last = rows.last().expect("at least one epoch");

    println!("\n## Self-tuning histograms under churn (paper error metric per epoch)\n");
    println!("| epoch | rows | static | patch-only | online refine | refine passes |");
    println!("|-------|------|--------|------------|---------------|---------------|");
    for r in &rows {
        println!(
            "| {} | {} | {:.3} | {:.3} | {:.3} | {} |",
            r.epoch, r.rows, r.err_static, r.err_patch, r.err_refine, r.refine_passes
        );
    }
    println!(
        "\nhorizon end: static {:.3}, refine {:.3} ({:.2}x); refine step {:.2} ms \
         (pass incl. audit {:.2} ms) vs full ANALYZE {:.2} ms ({:.1}% of a rebuild)",
        last.err_static,
        last.err_refine,
        last.err_refine / last.err_static.max(1e-12),
        refine_step_secs * 1e3,
        per_pass_secs * 1e3,
        analyze_secs * 1e3,
        refine_step_secs / analyze_secs.max(1e-12) * 100.0
    );

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"initial_rects\": {n0},\n  \"epochs\": {epochs},\n  \
         \"hotspot_inserts_per_epoch\": {hotspot_inserts},\n  \
         \"deletes_per_epoch\": {deletes},\n"
    ));
    json.push_str(
        "  \"note\": \"paper avg rel error per epoch over a held-out workload; \
         static = epoch-0 histogram frozen, patch = insert/delete absorption only \
         (maintenance off), refine = query-driven online refine loop\",\n",
    );
    json.push_str("  \"epochs_rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"epoch\": {}, \"rows\": {}, \"err_static\": {:.6}, \
             \"err_patch\": {:.6}, \"err_refine\": {:.6}, \"staleness_patch\": {:.6}, \
             \"refine_passes\": {}, \"refine_ms\": {:.3}}}{}\n",
            r.epoch,
            r.rows,
            r.err_static,
            r.err_patch,
            r.err_refine,
            r.staleness_patch,
            r.refine_passes,
            r.refine_secs * 1e3,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"horizon\": {{\"err_static\": {:.6}, \"err_patch\": {:.6}, \
         \"err_refine\": {:.6}, \"refine_vs_static\": {:.6}, \
         \"refine_step_ms\": {:.3}, \"maintain_pass_ms\": {:.3}, \
         \"full_analyze_ms\": {:.3}, \"refine_cost_fraction\": {:.6}}},\n",
        last.err_static,
        last.err_patch,
        last.err_refine,
        last.err_refine / last.err_static.max(1e-12),
        refine_step_secs * 1e3,
        per_pass_secs * 1e3,
        analyze_secs * 1e3,
        refine_step_secs / analyze_secs.max(1e-12)
    ));
    json.push_str(
        "  \"cost_note\": \"refine_step_ms is the histogram repair alone \
         (engine.maintenance.refine_ns); maintain_pass_ms additionally \
         includes the accuracy audit, which every maintenance mode — Off \
         included — pays as monitoring\"\n",
    );
    json.push_str("}\n");

    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_refine.json");
    std::fs::write(&out, json).expect("write BENCH_refine.json");
    println!("\nwrote {}", out.display());
}
