//! Figure 9: average relative error vs. number of buckets (50–750) for
//! QSize 5% and 25%, NJ Road dataset.
//!
//! Paper shape: more buckets help everyone; Min-Skew leads across the whole
//! range and especially at small budgets (50–100 buckets); technique gaps
//! shrink as budgets grow; Sample stays ineffective.

use minskew_bench::{all_techniques, nj_road, print_error_table, run_point, Scale};
use minskew_workload::GroundTruth;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[fig9] generating NJ-road stand-in...");
    let data = nj_road(scale);
    eprintln!("[fig9] indexing ground truth over {} rects...", data.len());
    let truth = GroundTruth::index(&data);

    let bucket_counts = [50usize, 100, 200, 400, 750];
    for (qi, qsize) in [0.05, 0.25].into_iter().enumerate() {
        let mut rows = Vec::new();
        let mut names: Vec<String> = Vec::new();
        for (bi, &buckets) in bucket_counts.iter().enumerate() {
            eprintln!("[fig9] QSize {:.0}%, {buckets} buckets...", qsize * 100.0);
            let estimators = all_techniques(&data, buckets);
            if names.is_empty() {
                names = estimators.iter().map(|e| e.name().to_owned()).collect();
            }
            let reports = run_point(
                &data,
                &truth,
                &estimators,
                qsize,
                scale.queries,
                900 + (qi * 10 + bi) as u64,
            );
            rows.push((
                format!("{buckets} buckets"),
                reports.iter().map(|r| r.avg_relative_error).collect(),
            ));
        }
        print_error_table(
            &format!(
                "Figure 9: error vs bucket budget (NJ Road, QSize {:.0}%)",
                qsize * 100.0
            ),
            "Buckets",
            &names,
            &rows,
        );
    }
}
