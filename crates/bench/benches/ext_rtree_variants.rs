//! Extension experiment: does a distribution-aware R-tree make a better
//! histogram?
//!
//! §3.4 of the paper: "recent proposals to minimize the number of disk
//! reads performed by the R-tree by taking the data distribution into
//! account can be expected to produce partitions which are more conducive
//! to selectivity estimation [TS96]". We test that speculation with three
//! constructions of the same index — repeated R\*-insertion (the paper's),
//! STR packing, and Hilbert-curve packing — each turned into a 100-bucket
//! histogram, against Min-Skew as the reference.

use minskew_bench::{charminar_scaled, nj_road, time_it, Scale};
use minskew_core::{
    build_rtree_partitioning, MinSkewBuilder, RTreeBuildMethod, RTreePartitioningOptions,
};
use minskew_workload::{evaluate, GroundTruth, QueryWorkload};

fn main() {
    let scale = Scale::from_env();
    println!("\n## R-tree construction variants as histograms (100 buckets)\n");
    println!("| dataset    | construction  | build (s) | buckets | err QSize 5% | err QSize 25% |");
    println!("|------------|---------------|-----------|---------|--------------|---------------|");
    for (name, data) in [
        ("Charminar", charminar_scaled(scale)),
        ("NJ Road", nj_road(scale)),
    ] {
        eprintln!("[rtree-variants] indexing {name} ({} rects)...", data.len());
        let truth = GroundTruth::index(&data);
        let workloads: Vec<(QueryWorkload, Vec<usize>)> = [0.05, 0.25]
            .iter()
            .enumerate()
            .map(|(i, &qs)| {
                let w = QueryWorkload::generate(&data, qs, scale.queries, 8_000 + i as u64);
                let counts = truth.counts(w.queries());
                (w, counts)
            })
            .collect();
        let row = |label: &str, hist: minskew_core::SpatialHistogram, secs: f64| {
            let errs: Vec<f64> = workloads
                .iter()
                .map(|(w, c)| evaluate(&hist, w, c).avg_relative_error)
                .collect();
            println!(
                "| {name:<10} | {label:<13} | {secs:>9.3} | {:>7} | {:>11.1}% | {:>12.1}% |",
                hist.num_buckets(),
                errs[0] * 100.0,
                errs[1] * 100.0
            );
        };
        for (label, method) in [
            ("R*-insertion", RTreeBuildMethod::Insertion),
            ("STR-packed", RTreeBuildMethod::StrBulk),
            ("Hilbert-packed", RTreeBuildMethod::HilbertBulk),
        ] {
            let (hist, secs) = time_it(|| {
                build_rtree_partitioning(
                    &data,
                    100,
                    RTreePartitioningOptions {
                        method,
                        ..Default::default()
                    },
                )
            });
            row(label, hist, secs);
        }
        let (ms, secs) = time_it(|| MinSkewBuilder::new(100).regions(10_000).build(&data));
        row("Min-Skew (ref)", ms, secs);
    }
}
