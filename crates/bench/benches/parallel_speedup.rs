//! Parallel substrate speedup: serial vs threaded wall-clock for the three
//! parallelized layers, with the differential contract re-checked inline
//! (a speedup that changes the answer is a bug, not a win).
//!
//! Writes machine-readable results to `BENCH_parallel.json` at the
//! workspace root so CI can assert the file exists and reviewers can diff
//! numbers across machines. `host_cpus` is recorded alongside the timings:
//! speedup is only attainable up to the physical core count, so a 1-CPU
//! container will honestly report ~1.0x and that is the expected reading
//! there, not a regression.
//!
//! `MINSKEW_QUICK=1` shrinks the inputs for a smoke run.

use minskew_bench::{time_it, Scale};
use minskew_core::MinSkewBuilder;
use minskew_data::DensityGrid;
use minskew_datagen::charminar_with;
use minskew_workload::{GroundTruth, QueryWorkload};
use std::path::Path;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;

/// Best-of-`REPS` wall-clock seconds for `f`.
fn best_of<T>(mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let (_, secs) = time_it(&mut f);
        best = best.min(secs);
    }
    best
}

struct Section {
    name: &'static str,
    /// `(threads, best_seconds)` per sweep point.
    times: Vec<(usize, f64)>,
}

impl Section {
    fn speedup(&self, threads: usize) -> f64 {
        let serial = self.times[0].1;
        let t = self
            .times
            .iter()
            .find(|(k, _)| *k == threads)
            .map(|(_, s)| *s)
            .unwrap_or(serial);
        if t > 0.0 {
            serial / t
        } else {
            f64::INFINITY
        }
    }
}

fn main() {
    let scale = Scale::from_env();
    let n = 400_000 / scale.data_divisor;
    let queries = 20_000 / scale.data_divisor;
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());

    eprintln!("[parallel] host_cpus = {host_cpus}, N = {n}, queries = {queries}");
    let data = charminar_with(n, 0xBA11);
    let mbr = data.stats().mbr;

    // --- Layer 1: density-grid construction (sharded counts + merge). ---
    let serial_grid = DensityGrid::build(data.rects().iter(), mbr, 256, 256);
    let mut grid = Section {
        name: "density_grid_256x256",
        times: Vec::new(),
    };
    for t in THREADS {
        let secs = best_of(|| {
            let g = DensityGrid::build_with_threads(data.rects(), mbr, 256, 256, t);
            assert_eq!(g.densities(), serial_grid.densities(), "differential!");
            g
        });
        eprintln!("[parallel] grid threads={t}: {secs:.4}s");
        grid.times.push((t, secs));
    }

    // --- Layer 2: full Min-Skew construction. ---
    let reference = MinSkewBuilder::new(200).regions(10_000).build(&data);
    let reference_bytes = reference.to_bytes();
    let mut build = Section {
        name: "minskew_build_b200_r10000",
        times: Vec::new(),
    };
    for t in THREADS {
        let secs = best_of(|| {
            let h = MinSkewBuilder::new(200)
                .regions(10_000)
                .threads(t)
                .build(&data);
            assert_eq!(h.to_bytes(), reference_bytes, "differential!");
            h
        });
        eprintln!("[parallel] build threads={t}: {secs:.4}s");
        build.times.push((t, secs));
    }

    // --- Layer 3: batch ground-truth counting. ---
    let truth = GroundTruth::index(&data);
    let workload = QueryWorkload::generate(&data, 0.05, queries, 0x5EED);
    let serial_counts = truth.counts_with_threads(workload.queries(), 1);
    let mut counting = Section {
        name: "ground_truth_batch_counts",
        times: Vec::new(),
    };
    for t in THREADS {
        let secs = best_of(|| {
            let counts = truth.counts_with_threads(workload.queries(), t);
            assert_eq!(counts, serial_counts, "differential!");
            counts
        });
        eprintln!("[parallel] counts threads={t}: {secs:.4}s");
        counting.times.push((t, secs));
    }

    // --- Report. ---
    let sections = [&grid, &build, &counting];
    println!("\n## Parallel speedup (wall-clock, best of {REPS})\n");
    println!("| layer | t=1 (s) | t=2 | t=4 | t=8 | speedup@4 |");
    println!("|-------|---------|-----|-----|-----|-----------|");
    for s in sections {
        println!(
            "| {} | {:.4} | {:.4} | {:.4} | {:.4} | {:.2}x |",
            s.name,
            s.times[0].1,
            s.times[1].1,
            s.times[2].1,
            s.times[3].1,
            s.speedup(4),
        );
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(&format!("  \"dataset_rects\": {n},\n"));
    json.push_str(&format!("  \"queries\": {queries},\n"));
    json.push_str(&format!("  \"quick\": {},\n", scale.data_divisor != 1));
    json.push_str("  \"note\": \"speedup is bounded by host_cpus; on a 1-CPU host ~1.0x is the expected honest result\",\n");
    json.push_str("  \"sections\": [\n");
    for (i, s) in sections.iter().enumerate() {
        json.push_str(&format!("    {{\n      \"name\": \"{}\",\n", s.name));
        json.push_str("      \"seconds_by_threads\": {");
        for (j, (t, secs)) in s.times.iter().enumerate() {
            if j > 0 {
                json.push_str(", ");
            }
            json.push_str(&format!("\"{t}\": {secs:.6}"));
        }
        json.push_str("},\n");
        json.push_str(&format!(
            "      \"speedup_at_4_threads\": {:.4}\n    }}{}\n",
            s.speedup(4),
            if i + 1 < sections.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    // The bench binary runs with the bench crate as manifest dir; the JSON
    // belongs at the workspace root next to the other committed artefacts.
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_parallel.json");
    std::fs::write(&out, json).expect("write BENCH_parallel.json");
    println!("\nwrote {}", out.display());
}
