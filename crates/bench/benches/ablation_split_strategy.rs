//! Ablation: exact-2D split scoring vs. the paper's marginal-distribution
//! shortcut, on both datasets. Reports accuracy and construction time.
//!
//! Expectation: the marginal shortcut builds slightly faster but may choose
//! worse splits on distributions whose structure is invisible in the
//! marginals (e.g. diagonal features); on Charminar and road data the two
//! should be close — evidence that the paper's shortcut was benign.

use minskew_bench::{charminar_scaled, nj_road, time_it, Scale};
use minskew_core::{MinSkewBuilder, SplitStrategy};
use minskew_workload::{evaluate, GroundTruth, QueryWorkload};

fn main() {
    let scale = Scale::from_env();
    println!("\n## Ablation: Min-Skew split strategy (100 buckets, 10,000 regions)\n");
    println!("| dataset    | strategy | build (s) | err QSize 5% | err QSize 25% |");
    println!("|------------|----------|-----------|--------------|---------------|");

    let datasets = [
        ("Charminar", charminar_scaled(scale)),
        ("NJ Road", nj_road(scale)),
    ];
    for (name, data) in &datasets {
        eprintln!("[ablation-split] indexing {name}...");
        let truth = GroundTruth::index(data);
        let workloads: Vec<(QueryWorkload, Vec<usize>)> = [0.05, 0.25]
            .iter()
            .enumerate()
            .map(|(i, &qs)| {
                let w = QueryWorkload::generate(data, qs, scale.queries, 4_000 + i as u64);
                let counts = truth.counts(w.queries());
                (w, counts)
            })
            .collect();
        for (label, strategy) in [
            ("exact-2d", SplitStrategy::Exact2d),
            ("marginal", SplitStrategy::Marginal),
        ] {
            let (hist, secs) = time_it(|| {
                MinSkewBuilder::new(100)
                    .regions(10_000)
                    .split_strategy(strategy)
                    .build(data)
            });
            let errs: Vec<f64> = workloads
                .iter()
                .map(|(w, c)| evaluate(&hist, w, c).avg_relative_error)
                .collect();
            println!(
                "| {name:<10} | {label:<8} | {secs:>9.3} | {:>11.1}% | {:>12.1}% |",
                errs[0] * 100.0,
                errs[1] * 100.0
            );
        }
    }
}
