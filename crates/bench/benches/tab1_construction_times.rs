//! Table 1: construction time of each partitioning for input sizes 50 K and
//! 400 K and bucket budgets β ∈ {100, 750}.
//!
//! Paper shape (absolute times are hardware-bound; the *scaling* is the
//! claim): bucket count barely matters; Min-Skew and Uniform are nearly
//! flat in N; Equi-Area/Equi-Count grow steeply with N; R-Tree (repeated
//! R\*-insertion) grows worst of all at large β.

use minskew_bench::{time_it, Scale};
use minskew_core::{
    build_equi_area, build_equi_count, build_rtree_partitioning, build_uniform, MinSkewBuilder,
    RTreePartitioningOptions,
};
use minskew_datagen::SyntheticSpec;

fn main() {
    let scale = Scale::from_env();
    let sizes = [50_000 / scale.data_divisor, 400_000 / scale.data_divisor];
    let betas = [100usize, 750];

    println!("\n## Table 1: construction time (seconds)\n");
    println!("| technique  | N=50K b=100 | N=50K b=750 | N=400K b=100 | N=400K b=750 |");
    println!("|------------|-------------|-------------|--------------|--------------|");

    let datasets: Vec<_> = sizes
        .iter()
        .map(|&n| {
            eprintln!("[tab1] generating synthetic dataset N = {n}...");
            SyntheticSpec::default().with_n(n).generate(0x7AB1)
        })
        .collect();

    type Builder = Box<dyn Fn(&minskew_data::Dataset, usize)>;
    let techniques: Vec<(&str, Builder)> = vec![
        (
            "Min-Skew",
            Box::new(|ds, b| {
                MinSkewBuilder::new(b).regions(10_000).build(ds);
            }),
        ),
        (
            "Equi-Area",
            Box::new(|ds, b| {
                build_equi_area(ds, b);
            }),
        ),
        (
            "Equi-Count",
            Box::new(|ds, b| {
                build_equi_count(ds, b);
            }),
        ),
        (
            "R-Tree",
            Box::new(|ds, b| {
                build_rtree_partitioning(ds, b, RTreePartitioningOptions::default());
            }),
        ),
        (
            "Uniform",
            Box::new(|ds, _b| {
                build_uniform(ds);
            }),
        ),
    ];

    for (name, build) in &techniques {
        print!("| {name:<10} |");
        for ds in &datasets {
            for &b in &betas {
                let (_, secs) = time_it(|| build(ds, b));
                print!(" {secs:>11.3} |");
                eprintln!("[tab1] {name} N={} b={b}: {secs:.3}s", ds.len());
            }
        }
        println!();
    }
}
