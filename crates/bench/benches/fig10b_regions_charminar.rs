//! Figure 10(b): Min-Skew error vs. number of grid regions on the synthetic
//! Charminar dataset, 100 buckets, QSize 5% and 25%.
//!
//! Paper shape — the counter-intuitive result motivating progressive
//! refinement: small queries keep improving with more regions, but **large
//! queries get worse**, because a fine grid exposes the extreme corner skew
//! and the greedy algorithm drains the bucket budget into the corners,
//! starving the large uniform interior.

use minskew_bench::{charminar_scaled, print_error_table, Scale};
use minskew_core::MinSkewBuilder;
use minskew_workload::{evaluate, GroundTruth, QueryWorkload};

fn main() {
    let scale = Scale::from_env();
    eprintln!("[fig10b] generating Charminar...");
    let data = charminar_scaled(scale);
    eprintln!(
        "[fig10b] indexing ground truth over {} rects...",
        data.len()
    );
    let truth = GroundTruth::index(&data);

    let region_counts = [100usize, 400, 1_600, 6_400, 10_000, 30_000];
    let qsizes = [0.05, 0.25];
    let names: Vec<String> = qsizes
        .iter()
        .map(|q| format!("QSize {:.0}%", q * 100.0))
        .collect();

    let workloads: Vec<(QueryWorkload, Vec<usize>)> = qsizes
        .iter()
        .enumerate()
        .map(|(i, &qs)| {
            let w = QueryWorkload::generate(&data, qs, scale.queries, 2_000 + i as u64);
            let counts = truth.counts(w.queries());
            (w, counts)
        })
        .collect();

    let mut rows = Vec::new();
    for &regions in &region_counts {
        eprintln!("[fig10b] {regions} regions...");
        let hist = MinSkewBuilder::new(100).regions(regions).build(&data);
        let vals = workloads
            .iter()
            .map(|(w, counts)| evaluate(&hist, w, counts).avg_relative_error)
            .collect();
        rows.push((format!("{regions:>6} regions"), vals));
    }
    print_error_table(
        "Figure 10(b): Min-Skew error vs regions (Charminar, 100 buckets)",
        "Regions",
        &names,
        &rows,
    );
    println!(
        "Expected inversion: the QSize 25% column should bottom out at a \
         moderate region count and rise again at 30,000 regions."
    );
}
