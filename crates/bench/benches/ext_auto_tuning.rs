//! Extension experiment: automatic region/refinement selection — the
//! paper's stated future work ("finding the correct number of regions which
//! provides the least error"), implemented as an ANALYZE-time tuner.
//!
//! Expected: the tuner's pick lands at (or within noise of) the best entry
//! of the manual sweeps in Figures 10–11, without anyone having to read
//! those figures.

use minskew_bench::{charminar_scaled, nj_road, time_it, Scale};
use minskew_workload::{tune_min_skew, TuneOptions};

fn main() {
    let scale = Scale::from_env();
    for (name, data) in [
        ("Charminar", charminar_scaled(scale)),
        ("NJ Road", nj_road(scale)),
    ] {
        eprintln!("[autotune] tuning on {name} ({} rects)...", data.len());
        let mut opts = TuneOptions::for_buckets(100);
        opts.queries_per_size = scale.queries / 10;
        let (tuned, secs) = time_it(|| tune_min_skew(&data, 100, &opts));
        println!("\n## Auto-tuning Min-Skew on {name} (100 buckets, {secs:.1}s)\n");
        println!("| regions | refinements | validation error |");
        println!("|---------|-------------|------------------|");
        for t in &tuned.trials {
            let marker = if *t == tuned.best { " <- chosen" } else { "" };
            println!(
                "| {:>7} | {:>11} | {:>14.1}%{marker} |",
                t.regions,
                t.refinements,
                t.error * 100.0
            );
        }
    }
}
