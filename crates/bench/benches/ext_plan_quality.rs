//! Extension experiment: what estimation error *costs* the optimizer.
//!
//! The paper motivates selectivity estimation by access-path selection
//! [SAC+79] but measures only estimation error. This bench closes the
//! loop: drive the mini engine's seq-scan/index-scan planner with each
//! statistics technique and score the *plans*, not the estimates —
//! wrong-plan rate and mean cost regret (actual cost of the chosen plan
//! over the actual cost of the best plan).
//!
//! Expected: plan quality is a step function of estimation error — small
//! errors almost never flip a plan decision because the seq/index
//! crossover is wide; only the grossly-wrong Uniform estimates pick bad
//! plans at a meaningful rate. This is why histograms as small as 100
//! buckets are sufficient for optimizers, which is the paper's practical
//! punchline.

use minskew_bench::{charminar_scaled, Scale};
use minskew_engine::{Plan, SpatialTable, StatsTechnique, TableOptions};
use minskew_workload::QueryWorkload;

fn main() {
    let scale = Scale::from_env();
    let data = charminar_scaled(scale);
    println!(
        "\n## Plan quality by statistics technique (Charminar, {} rows, 100 buckets)\n",
        data.len()
    );
    println!("| technique  | wrong plans | mean regret | max regret |");
    println!("|------------|-------------|-------------|------------|");

    for (label, technique) in [
        ("Min-Skew", StatsTechnique::MinSkew),
        ("Equi-Count", StatsTechnique::EquiCount),
        ("Equi-Area", StatsTechnique::EquiArea),
        ("Uniform", StatsTechnique::Uniform),
    ] {
        eprintln!("[plan-quality] {label}...");
        let mut options = TableOptions::default();
        options.analyze.technique = technique;
        options.auto_analyze_threshold = None;
        let mut table = SpatialTable::new(options);
        for &r in data.rects() {
            table.insert(r);
        }
        table.analyze();
        let model = TableOptions::default().cost_model;
        let n = table.len();

        let mut wrong = 0usize;
        let mut total = 0usize;
        let mut regret_sum = 0.0;
        let mut regret_max: f64 = 0.0;
        // Mixed workload straddling the seq/index crossover.
        for (i, qsize) in [0.02, 0.05, 0.10, 0.20, 0.30, 0.45].into_iter().enumerate() {
            let w = QueryWorkload::generate(&data, qsize, scale.queries / 10, 42 + i as u64);
            for q in w.queries() {
                let explain = table.plan(q);
                let (ids, _) = table.execute_explain(q);
                let actual = ids.len();
                // Actual cost of each plan, given the true result size.
                let seq = model.seq_scan_cost(n);
                let index = model.index_scan_cost(actual as f64);
                let best = seq.min(index);
                let chosen = match explain.plan {
                    Plan::SeqScan => seq,
                    Plan::IndexScan => index,
                };
                if chosen > best {
                    wrong += 1;
                }
                let regret = chosen / best - 1.0;
                regret_sum += regret;
                regret_max = regret_max.max(regret);
                total += 1;
            }
        }
        println!(
            "| {label:<10} | {:>10.2}% | {:>10.2}% | {:>9.0}% |",
            wrong as f64 / total as f64 * 100.0,
            regret_sum / total as f64 * 100.0,
            regret_max * 100.0
        );
    }
}
