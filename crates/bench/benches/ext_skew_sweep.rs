//! Extension experiment: the synthetic skew spectrum.
//!
//! §5.1.2: "We systematically generated several synthetic datasets varying
//! in size, sparsity, placement skew, and size skew … we present results
//! from one set [Charminar]" (the rest went to the unpublished full
//! version). This bench restores the sweep: estimation error as placement
//! skew and size skew vary independently, for Min-Skew and contrasting
//! baselines.
//!
//! Expected: at zero skew everything is easy (Uniform included); rising
//! *placement* skew destroys Uniform/Sample quickly while Min-Skew stays
//! flat (that is its design goal); rising *size* skew hurts everyone
//! mildly (the per-bucket average width/height stops being representative)
//! — the paper's footnote that "placement skew tends to dominate size skew"
//! made quantitative.

use minskew_bench::Scale;
use minskew_core::{
    build_equi_count, build_uniform, MinSkewBuilder, SamplingEstimator, SpatialEstimator,
};
use minskew_datagen::SyntheticSpec;
use minskew_workload::{evaluate, GroundTruth, QueryWorkload};

fn run_row(label: &str, spec: &SyntheticSpec, queries: usize) {
    let data = spec.generate(0x5EED);
    let truth = GroundTruth::index(&data);
    let w = QueryWorkload::generate(&data, 0.05, queries, 0xF00D);
    let counts = truth.counts(w.queries());
    let estimators: Vec<Box<dyn SpatialEstimator>> = vec![
        Box::new(MinSkewBuilder::new(100).regions(10_000).build(&data)),
        Box::new(build_equi_count(&data, 100)),
        Box::new(SamplingEstimator::build(&data, 100, 1)),
        Box::new(build_uniform(&data)),
    ];
    print!("| {label:<26} |");
    for e in &estimators {
        let err = evaluate(e.as_ref(), &w, &counts).avg_relative_error;
        print!(" {:>9.1}% |", err * 100.0);
    }
    println!();
}

fn main() {
    let scale = Scale::from_env();
    let n = 50_000 / scale.data_divisor;
    let queries = scale.queries / 2;

    println!("\n## Skew sweep (synthetic family, N = {n}, 100 buckets, QSize 5%)\n");
    println!("| dataset                    |  Min-Skew | Equi-Count |    Sample |   Uniform |");
    println!("|----------------------------|-----------|------------|-----------|-----------|");

    // Placement-skew sweep at mild size skew.
    for theta in [0.0, 0.4, 0.8, 1.2, 1.6] {
        eprintln!("[skew-sweep] placement theta = {theta}...");
        let spec = SyntheticSpec::default()
            .with_n(n)
            .with_placement_theta(theta)
            .with_size_theta(0.5);
        run_row(
            &format!("placement θ={theta:.1}, size θ=0.5"),
            &spec,
            queries,
        );
    }
    println!("|----------------------------|-----------|------------|-----------|-----------|");
    // Size-skew sweep at moderate placement skew.
    for theta in [0.0, 0.75, 1.5, 2.5] {
        eprintln!("[skew-sweep] size theta = {theta}...");
        let spec = SyntheticSpec::default()
            .with_n(n)
            .with_placement_theta(0.8)
            .with_size_theta(theta);
        run_row(
            &format!("placement θ=0.8, size θ={theta:.2}"),
            &spec,
            queries,
        );
    }
}
