//! Figure 8: average relative error vs. query size (QSize 2%–25%),
//! 100 buckets, NJ Road dataset.
//!
//! Paper shape to reproduce: errors fall as QSize grows; Min-Skew wins by a
//! wide margin (>50% better than the nearest competitor at most sizes);
//! Sample ~82% at QSize 2%; Fractal ~90% flat; Uniform 80%→57%.

use minskew_bench::{all_techniques, nj_road, print_error_table, run_point, Scale};
use minskew_workload::GroundTruth;

fn main() {
    let scale = Scale::from_env();
    eprintln!(
        "[fig8] generating NJ-road stand-in ({}x scale-down)...",
        scale.data_divisor
    );
    let data = nj_road(scale);
    eprintln!("[fig8] indexing ground truth over {} rects...", data.len());
    let truth = GroundTruth::index(&data);
    eprintln!("[fig8] building 7 techniques at 100 buckets...");
    let estimators = all_techniques(&data, 100);
    let names: Vec<String> = estimators.iter().map(|e| e.name().to_owned()).collect();

    let qsizes = [0.02, 0.05, 0.10, 0.15, 0.20, 0.25];
    let mut rows = Vec::new();
    for (i, &qs) in qsizes.iter().enumerate() {
        eprintln!("[fig8] QSize {:.0}%...", qs * 100.0);
        let reports = run_point(
            &data,
            &truth,
            &estimators,
            qs,
            scale.queries,
            800 + i as u64,
        );
        rows.push((
            format!("QSize {:>4.0}%", qs * 100.0),
            reports.iter().map(|r| r.avg_relative_error).collect(),
        ));
    }
    print_error_table(
        "Figure 8: error vs query size (NJ Road, 100 buckets)",
        "QSize",
        &names,
        &rows,
    );
}
