//! Micro-benchmarks for the R\*-tree substrate itself: insertion, bulk
//! loading, range counting, kNN, and deletion. These are the index's own
//! performance envelope, separate from its role as a partitioning source.
//!
//! Formerly a criterion harness; the workspace now builds with no external
//! dependencies, so this uses a small median-of-runs timer instead.

use minskew_bench::time_it;
use minskew_datagen::SyntheticSpec;
use minskew_geom::{Point, Rect};
use minskew_rtree::{Item, RStarTree, RTreeConfig};

const N: usize = 50_000;
const RUNS: usize = 10;

fn dataset() -> Vec<Rect> {
    SyntheticSpec::default()
        .with_n(N)
        .generate(0xFEED)
        .rects()
        .to_vec()
}

/// Times `f` RUNS times and prints min/median wall-clock seconds.
fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    let mut times: Vec<f64> = (0..RUNS)
        .map(|_| {
            let (out, secs) = time_it(&mut f);
            std::hint::black_box(out);
            secs
        })
        .collect();
    times.sort_by(f64::total_cmp);
    println!(
        "| {name:<24} | {:>10.3} ms | {:>10.3} ms |",
        times[0] * 1e3,
        times[times.len() / 2] * 1e3,
    );
}

fn header(title: &str) {
    println!("\n## {title}\n");
    println!("| {:<24} | {:>13} | {:>13} |", "bench", "min", "median");
    println!("|{}|{}|{}|", "-".repeat(26), "-".repeat(15), "-".repeat(15));
}

fn main() {
    let rects = dataset();

    header("rtree_build_50k");
    bench("insertion", || {
        let mut t = RStarTree::new(RTreeConfig::default());
        for (i, &r) in rects.iter().enumerate() {
            t.insert(r, i);
        }
        t
    });
    bench("str_bulk", || {
        RStarTree::bulk_load(
            RTreeConfig::default(),
            rects
                .iter()
                .enumerate()
                .map(|(i, &r)| Item::new(r, i))
                .collect(),
        )
    });
    bench("hilbert_bulk", || {
        RStarTree::bulk_load_hilbert(
            RTreeConfig::default(),
            rects
                .iter()
                .enumerate()
                .map(|(i, &r)| Item::new(r, i))
                .collect(),
        )
    });

    let tree = RStarTree::bulk_load(
        RTreeConfig::with_max_entries(64),
        rects
            .iter()
            .enumerate()
            .map(|(i, &r)| Item::new(r, i))
            .collect(),
    );
    let mbr = tree.mbr();
    let queries: Vec<Rect> = (0..256)
        .map(|i| {
            let fx = (i % 16) as f64 / 16.0;
            let fy = (i / 16) as f64 / 16.0;
            let cx = mbr.lo.x + fx * mbr.width();
            let cy = mbr.lo.y + fy * mbr.height();
            Rect::from_center_size(Point::new(cx, cy), mbr.width() * 0.05, mbr.height() * 0.05)
        })
        .collect();

    header("rtree_query_50k");
    bench("count_256_range_queries", || {
        let mut acc = 0usize;
        for q in &queries {
            acc += tree.count_intersecting(q);
        }
        acc
    });
    bench("knn10_256_points", || {
        let mut acc = 0usize;
        for q in &queries {
            acc += tree.nearest_neighbors(q.center(), 10).len();
        }
        acc
    });

    header("rtree_mutation");
    let mut base = RStarTree::new(RTreeConfig::default());
    for (i, &r) in rects.iter().enumerate() {
        base.insert(r, i);
    }
    bench("remove_reinsert_1000", || {
        let mut t = base.clone();
        for (i, &r) in rects.iter().enumerate().take(1_000) {
            assert!(t.remove(&r, &i));
        }
        for (i, &r) in rects.iter().enumerate().take(1_000) {
            t.insert(r, i);
        }
        t
    });
    println!();
}
