//! Criterion micro-benchmarks for the R\*-tree substrate itself:
//! insertion, bulk loading, range counting, kNN, and deletion. These are
//! the index's own performance envelope, separate from its role as a
//! partitioning source.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use minskew_datagen::SyntheticSpec;
use minskew_geom::{Point, Rect};
use minskew_rtree::{Item, RStarTree, RTreeConfig};

const N: usize = 50_000;

fn dataset() -> Vec<Rect> {
    SyntheticSpec::default()
        .with_n(N)
        .generate(0xFEED)
        .rects()
        .to_vec()
}

fn build_benches(c: &mut Criterion) {
    let rects = dataset();
    let mut g = c.benchmark_group("rtree_build_50k");
    g.sample_size(10);
    g.bench_function("insertion", |b| {
        b.iter(|| {
            let mut t = RStarTree::new(RTreeConfig::default());
            for (i, &r) in rects.iter().enumerate() {
                t.insert(r, i);
            }
            t
        })
    });
    g.bench_function("str_bulk", |b| {
        b.iter(|| {
            RStarTree::bulk_load(
                RTreeConfig::default(),
                rects.iter().enumerate().map(|(i, &r)| Item::new(r, i)).collect(),
            )
        })
    });
    g.bench_function("hilbert_bulk", |b| {
        b.iter(|| {
            RStarTree::bulk_load_hilbert(
                RTreeConfig::default(),
                rects.iter().enumerate().map(|(i, &r)| Item::new(r, i)).collect(),
            )
        })
    });
    g.finish();
}

fn query_benches(c: &mut Criterion) {
    let rects = dataset();
    let tree = RStarTree::bulk_load(
        RTreeConfig::with_max_entries(64),
        rects.iter().enumerate().map(|(i, &r)| Item::new(r, i)).collect(),
    );
    let mbr = tree.mbr();
    let queries: Vec<Rect> = (0..256)
        .map(|i| {
            let fx = (i % 16) as f64 / 16.0;
            let fy = (i / 16) as f64 / 16.0;
            let cx = mbr.lo.x + fx * mbr.width();
            let cy = mbr.lo.y + fy * mbr.height();
            Rect::from_center_size(Point::new(cx, cy), mbr.width() * 0.05, mbr.height() * 0.05)
        })
        .collect();

    let mut g = c.benchmark_group("rtree_query_50k");
    g.bench_function("count_256_range_queries", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for q in &queries {
                acc += tree.count_intersecting(q);
            }
            acc
        })
    });
    g.bench_function("knn10_256_points", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for q in &queries {
                acc += tree.nearest_neighbors(q.center(), 10).len();
            }
            acc
        })
    });
    g.finish();

    let mut g = c.benchmark_group("rtree_mutation");
    g.sample_size(10);
    g.bench_function("remove_reinsert_1000", |b| {
        let mut t = RStarTree::new(RTreeConfig::default());
        for (i, &r) in rects.iter().enumerate() {
            t.insert(r, i);
        }
        b.iter_batched(
            || t.clone(),
            |mut t| {
                for (i, &r) in rects.iter().enumerate().take(1_000) {
                    assert!(t.remove(&r, &i));
                }
                for (i, &r) in rects.iter().enumerate().take(1_000) {
                    t.insert(r, i);
                }
                t
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, build_benches, query_benches);
criterion_main!(benches);
