//! Extension experiment: point-query accuracy.
//!
//! The paper's problem formulation covers point queries (a range query with
//! `qx1 == qx2, qy1 == qy2`, answered by the `TA/Area` average per bucket)
//! but its evaluation section only sweeps range queries. This bench fills
//! that gap: the full technique roster answering pure point queries at
//! data-rectangle centres.
//!
//! Expected: the bucket-based techniques inherit their range-query ordering
//! (Min-Skew ahead); Sample collapses (a 0.1 % sample almost never contains
//! a rectangle covering a given point, so most estimates are 0 or huge);
//! per-query error is high for everyone because point results are tiny
//! integers.

use minskew_bench::{all_techniques, charminar_scaled, nj_road, Scale};
use minskew_workload::{evaluate, GroundTruth, QueryWorkload};

fn main() {
    let scale = Scale::from_env();
    println!("\n## Extension: point queries (100 buckets)\n");
    println!("| dataset    | technique  | avg rel err | per-query err |");
    println!("|------------|------------|-------------|---------------|");
    for (name, data) in [
        ("Charminar", charminar_scaled(scale)),
        ("NJ Road", nj_road(scale)),
    ] {
        eprintln!("[points] indexing {name} ({} rects)...", data.len());
        let truth = GroundTruth::index(&data);
        let w = QueryWorkload::points(&data, scale.queries, 6_000);
        let counts = truth.counts(w.queries());
        let estimators = all_techniques(&data, 100);
        for e in &estimators {
            let rep = evaluate(e.as_ref(), &w, &counts);
            println!(
                "| {name:<10} | {:<10} | {:>10.1}% | {:>12.1}% |",
                rep.name,
                rep.avg_relative_error * 100.0,
                rep.mean_per_query_error * 100.0
            );
        }
    }
}
