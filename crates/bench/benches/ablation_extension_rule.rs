//! Ablation: the per-bucket query-extension rule.
//!
//! §3.1's text extends each query side by the *full* average rectangle
//! width/height; the geometrically exact Minkowski correction uses *half*.
//! This bench quantifies the difference (and the no-extension baseline the
//! paper argues against) across query sizes on both datasets.
//!
//! Expectation: Minkowski ≤ paper-literal everywhere, with the gap largest
//! for small queries (where the over-extension is proportionally biggest);
//! no-extension underestimates and is worst for point-like queries.

use minskew_bench::{charminar_scaled, nj_road, print_error_table, Scale};
use minskew_core::{ExtensionRule, MinSkewBuilder};
use minskew_workload::{evaluate, GroundTruth, QueryWorkload};

fn main() {
    let scale = Scale::from_env();
    let rules = [
        ("Minkowski", ExtensionRule::Minkowski),
        ("PaperLiteral", ExtensionRule::PaperLiteral),
        ("NoExtension", ExtensionRule::None),
    ];
    let names: Vec<String> = rules.iter().map(|(n, _)| n.to_string()).collect();

    for (ds_name, data) in [
        ("Charminar", charminar_scaled(scale)),
        ("NJ Road", nj_road(scale)),
    ] {
        eprintln!("[ablation-ext] indexing {ds_name}...");
        let truth = GroundTruth::index(&data);
        let base = MinSkewBuilder::new(100).regions(10_000).build(&data);
        let mut rows = Vec::new();
        for (i, qs) in [0.02, 0.05, 0.10, 0.25].into_iter().enumerate() {
            let w = QueryWorkload::generate(&data, qs, scale.queries, 5_000 + i as u64);
            let counts = truth.counts(w.queries());
            let vals = rules
                .iter()
                .map(|(_, rule)| {
                    let h = base.clone().with_extension_rule(*rule);
                    evaluate(&h, &w, &counts).avg_relative_error
                })
                .collect();
            rows.push((format!("QSize {:>4.0}%", qs * 100.0), vals));
        }
        print_error_table(
            &format!("Ablation: query-extension rule ({ds_name}, Min-Skew, 100 buckets)"),
            "QSize",
            &names,
            &rows,
        );
    }
}
