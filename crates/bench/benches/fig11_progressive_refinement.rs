//! Figure 11: impact of progressive refinement. Charminar, 100 buckets,
//! 30 000 regions, large queries (QSize 25%); refinements 0–8 on the x axis.
//!
//! Paper shape: refinements cut the large-query error substantially (the
//! paper reports >55%), approaching — without quite reaching — the best
//! error achievable by hand-picking the region count; past a few
//! refinements the error creeps back up (too few buckets remain for the
//! skewed corners by the time the grid is fine). Best k was 2–6 in the
//! paper's runs.

use minskew_bench::{charminar_scaled, Scale};
use minskew_core::MinSkewBuilder;
use minskew_workload::{evaluate, GroundTruth, QueryWorkload};

fn main() {
    let scale = Scale::from_env();
    eprintln!("[fig11] generating Charminar...");
    let data = charminar_scaled(scale);
    eprintln!("[fig11] indexing ground truth over {} rects...", data.len());
    let truth = GroundTruth::index(&data);
    let w = QueryWorkload::generate(&data, 0.25, scale.queries, 3_000);
    let counts = truth.counts(w.queries());

    const REGIONS: usize = 30_000;
    const BUCKETS: usize = 100;

    println!("\n## Figure 11: progressive refinement (Charminar, {BUCKETS} buckets, {REGIONS} regions, QSize 25%)\n");
    println!("| refinements | avg rel error |");
    println!("|-------------|---------------|");
    let mut zero_refinement = f64::NAN;
    let mut best = (0usize, f64::INFINITY);
    for k in 0..=8usize {
        let hist = MinSkewBuilder::new(BUCKETS)
            .regions(REGIONS)
            .progressive_refinements(k)
            .build(&data);
        let err = evaluate(&hist, &w, &counts).avg_relative_error;
        println!("| {k:>11} | {:>12.1}% |", err * 100.0);
        if k == 0 {
            zero_refinement = err;
        }
        if err < best.1 {
            best = (k, err);
        }
    }

    // The paper's horizontal reference: the minimum error achievable by
    // picking the best fixed region count (no refinement).
    let reference = [100usize, 400, 1_600, 6_400, 10_000, 30_000]
        .iter()
        .map(|&regions| {
            let hist = MinSkewBuilder::new(BUCKETS).regions(regions).build(&data);
            evaluate(&hist, &w, &counts).avg_relative_error
        })
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nbest fixed-region error (horizontal line): {:.1}%",
        reference * 100.0
    );
    println!(
        "best refinement k = {} cuts the k=0 error by {:.0}% (paper: >55%)",
        best.0,
        (1.0 - best.1 / zero_refinement) * 100.0
    );
}
