//! Serving-path throughput: queries/sec for the scalar AoS reference fold
//! vs the AoS indexed path vs the production SoA kernel path vs the kernel
//! path behind the engine's query cache, at bucket budgets
//! β ∈ {50, 200, 1000} on Charminar and the NJ-Road stand-in — with the
//! bit-identity contract re-checked before timing (a speedup that changes
//! the answer is a bug, not a win).
//!
//! `qps_linear`/`qps_indexed` time the retained reference implementations
//! (`estimate_count_reference` / `estimate_count_indexed_reference`) — the
//! pre-kernel serving paths — so `kernel_speedup` measures exactly what the
//! SoA clip-and-accumulate plane buys over the AoS indexed fold it
//! replaced. `simd_level` records which kernel variant actually ran on the
//! measurement host (scalar-autovec, sse2, or avx2).
//!
//! Writes machine-readable results to `BENCH_estimate.json` at the
//! workspace root so CI can assert the file exists and reviewers can diff
//! numbers across machines. `host_cpus` is recorded honestly; the indexed
//! win is algorithmic (fewer buckets touched per query), so it shows up on
//! a 1-CPU container too. The cached row models repeated query traffic:
//! the same pool of distinct rectangles served over and over, which is the
//! workload the LRU exists for.
//!
//! `MINSKEW_QUICK=1` shrinks the inputs for a smoke run.

use minskew_bench::{charminar_scaled, nj_road, time_it, Scale, DEFAULT_REGIONS};
use minskew_core::{simd_level, IndexScratch, MinSkewBuilder, SpatialEstimator};
use minskew_data::Dataset;
use minskew_engine::{AnalyzeOptions, SpatialTable, StatsTechnique, TableOptions};
use minskew_geom::Rect;
use minskew_workload::QueryWorkload;
use std::hint::black_box;
use std::path::Path;

const BUCKETS: [usize; 3] = [50, 200, 1000];
const REPS: usize = 3;

/// Best-of-`REPS` wall-clock seconds for `f`.
fn best_of<T>(mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let (_, secs) = time_it(&mut f);
        best = best.min(secs);
    }
    best
}

struct Row {
    dataset: &'static str,
    buckets: usize,
    qps_linear: f64,
    qps_indexed: f64,
    qps_kernel: f64,
    qps_cached: f64,
}

fn bench_dataset(name: &'static str, data: &Dataset, scale: Scale, rows: &mut Vec<Row>) {
    // A fixed pool of distinct queries, served repeatedly: `rounds` passes
    // give stable timings and make the cached scenario honest (pass 1
    // misses, later passes hit).
    let pool_size = scale.queries.min(1_000);
    let workload = QueryWorkload::generate(data, 0.05, pool_size, 0x5E4F);
    let pool: Vec<Rect> = workload.queries().to_vec();
    let rounds = (100_000 / (pool.len() * scale.data_divisor)).max(2);

    let mut table = SpatialTable::new(TableOptions::default());
    for r in data.rects() {
        table.insert(*r);
    }

    for buckets in BUCKETS {
        let hist = MinSkewBuilder::new(buckets)
            .regions(DEFAULT_REGIONS)
            .build(data)
            .with_index();
        let mut scratch = IndexScratch::new();
        // Differential check first: the timed loops must agree to the bit.
        for q in &pool {
            let reference = hist.estimate_count_reference(q);
            assert_eq!(
                reference.to_bits(),
                hist.estimate_count(q).to_bits(),
                "kernel fold diverged: {name} buckets={buckets} q={q}"
            );
            assert_eq!(
                reference.to_bits(),
                hist.estimate_count_indexed(q, &mut scratch).to_bits(),
                "kernel indexed estimate diverged: {name} buckets={buckets} q={q}"
            );
            assert_eq!(
                reference.to_bits(),
                hist.estimate_count_indexed_reference(q, &mut scratch)
                    .to_bits(),
                "AoS indexed estimate diverged: {name} buckets={buckets} q={q}"
            );
        }

        let calls = (pool.len() * rounds) as f64;
        let secs_linear = best_of(|| {
            let mut acc = 0.0;
            for _ in 0..rounds {
                for q in &pool {
                    acc += hist.estimate_count_reference(q);
                }
            }
            black_box(acc)
        });
        let secs_indexed = best_of(|| {
            let mut acc = 0.0;
            for _ in 0..rounds {
                for q in &pool {
                    acc += hist.estimate_count_indexed_reference(q, &mut scratch);
                }
            }
            black_box(acc)
        });
        let secs_kernel = best_of(|| {
            let mut acc = 0.0;
            for _ in 0..rounds {
                for q in &pool {
                    acc += hist.estimate_count_indexed(q, &mut scratch);
                }
            }
            black_box(acc)
        });

        // Table-level: the same histogram technique behind the engine's
        // serving path, with the query cache absorbing the repeats.
        table.set_analyze_options(AnalyzeOptions {
            technique: StatsTechnique::MinSkew,
            buckets,
            regions: DEFAULT_REGIONS,
            refinements: 0,
        });
        table.analyze();
        table.set_query_cache(false, 0);
        let reference: Vec<u64> = pool.iter().map(|q| table.estimate(q).to_bits()).collect();
        table.set_query_cache(true, 2 * pool.len());
        let cached: Vec<u64> = pool.iter().map(|q| table.estimate(q).to_bits()).collect();
        assert_eq!(cached, reference, "cached estimate diverged: {name}");
        let secs_cached = best_of(|| {
            let mut acc = 0.0;
            for _ in 0..rounds {
                for q in &pool {
                    acc += table.estimate(q);
                }
            }
            black_box(acc)
        });

        let row = Row {
            dataset: name,
            buckets,
            qps_linear: calls / secs_linear,
            qps_indexed: calls / secs_indexed,
            qps_kernel: calls / secs_kernel,
            qps_cached: calls / secs_cached,
        };
        eprintln!(
            "[serving] {name} beta={buckets}: linear {:.0} q/s, indexed {:.0} q/s \
             ({:.2}x), kernel {:.0} q/s ({:.2}x vs indexed), indexed+cache {:.0} q/s ({:.2}x)",
            row.qps_linear,
            row.qps_indexed,
            row.qps_indexed / row.qps_linear,
            row.qps_kernel,
            row.qps_kernel / row.qps_indexed,
            row.qps_cached,
            row.qps_cached / row.qps_linear,
        );
        rows.push(row);
    }
}

fn main() {
    let scale = Scale::from_env();
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    eprintln!(
        "[serving] host_cpus = {host_cpus}, quick = {}",
        scale.data_divisor != 1
    );

    let charminar = charminar_scaled(scale);
    let road = nj_road(scale);
    let mut rows = Vec::new();
    bench_dataset("charminar", &charminar, scale, &mut rows);
    bench_dataset("nj_road_like", &road, scale, &mut rows);

    println!("\n## Serving throughput (queries/sec, best of {REPS})\n");
    println!("| dataset | beta | linear | indexed | kernel | indexed+cache | kernel speedup |");
    println!("|---------|------|--------|---------|--------|---------------|----------------|");
    for r in &rows {
        println!(
            "| {} | {} | {:.0} | {:.0} | {:.0} | {:.0} | {:.2}x |",
            r.dataset,
            r.buckets,
            r.qps_linear,
            r.qps_indexed,
            r.qps_kernel,
            r.qps_cached,
            r.qps_kernel / r.qps_indexed,
        );
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(&format!("  \"simd_level\": \"{}\",\n", simd_level()));
    json.push_str(&format!(
        "  \"charminar_rects\": {},\n  \"nj_road_like_rects\": {},\n",
        charminar.len(),
        road.len()
    ));
    json.push_str(&format!("  \"quick\": {},\n", scale.data_divisor != 1));
    json.push_str(
        "  \"note\": \"single-query serving on one thread; qps_linear and \
         qps_indexed time the retained AoS reference paths, qps_kernel the \
         production SoA clip-and-accumulate plane (bit-identical; variant in \
         simd_level); cached row is repeated traffic over a fixed query \
         pool\",\n",
    );
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"buckets\": {}, \"qps_linear\": {:.1}, \
             \"qps_indexed\": {:.1}, \"qps_kernel\": {:.1}, \
             \"qps_indexed_cache\": {:.1}, \"indexed_speedup\": {:.4}, \
             \"kernel_speedup\": {:.4}}}{}\n",
            r.dataset,
            r.buckets,
            r.qps_linear,
            r.qps_indexed,
            r.qps_kernel,
            r.qps_cached,
            r.qps_indexed / r.qps_linear,
            r.qps_kernel / r.qps_indexed,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_estimate.json");
    std::fs::write(&out, json).expect("write BENCH_estimate.json");
    println!("\nwrote {}", out.display());
}
