//! Extension experiment: the greedy/optimal gap.
//!
//! The paper justifies greedy Min-Skew by the infeasibility of the exact
//! dynamic-programming BSP ([MPS99], Ω(N^2.5)). With both implemented we
//! can *measure* the trade: on grids small enough for the DP, how much
//! spatial skew does the greedy heuristic leave on the table, and at what
//! construction-cost ratio?
//!
//! Expected: greedy within a small factor of optimal skew (V-optimal-style
//! greedy splitting is known to be near-optimal on smooth distributions)
//! while being orders of magnitude faster — evidence the paper's heuristic
//! choice was sound.

use minskew_bench::{charminar_scaled, time_it, Scale};
use minskew_core::{optimal_bsp_skew, MinSkewBuilder};
use minskew_data::DensityGrid;

fn main() {
    let scale = Scale::from_env();
    let data = charminar_scaled(scale);
    let side = 12; // 144 regions: DP-feasible
    let grid = DensityGrid::build(data.rects().iter(), data.stats().mbr, side, side);

    println!("\n## Greedy vs optimal BSP (Charminar, {side}x{side} grid)\n");
    println!("| buckets | greedy skew | optimal skew | gap | greedy (ms) | optimal (ms) |");
    println!("|---------|-------------|--------------|-----|-------------|--------------|");
    for buckets in [4usize, 8, 16, 32, 64] {
        let (greedy, g_secs) = time_it(|| {
            MinSkewBuilder::new(buckets)
                .regions(side * side)
                .build_detailed(&data)
                .1
                .spatial_skew
        });
        let (optimal, o_secs) = time_it(|| optimal_bsp_skew(&grid, buckets));
        let gap = if optimal > 0.0 {
            format!("{:+.1}%", (greedy / optimal - 1.0) * 100.0)
        } else if greedy > 1e-9 {
            "inf".to_owned()
        } else {
            "0.0%".to_owned()
        };
        println!(
            "| {buckets:>7} | {greedy:>11.0} | {optimal:>12.0} | {gap:>4} | {:>11.2} | {:>12.2} |",
            g_secs * 1e3,
            o_secs * 1e3
        );
    }
    println!(
        "\n(note: greedy timings include the full build — data sweep and \
         final assignment pass — while the DP timing is the pure search)"
    );
}
