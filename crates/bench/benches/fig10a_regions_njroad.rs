//! Figure 10(a): Min-Skew error vs. number of grid regions on the NJ Road
//! dataset, 100 buckets, QSize 5% and 25%.
//!
//! Paper shape: errors fall steeply with the first few thousand regions and
//! then flatten — real data is skewed but not extremely so, and past a point
//! extra regions capture nothing new.

use minskew_bench::{nj_road, print_error_table, Scale};
use minskew_core::MinSkewBuilder;
use minskew_workload::{evaluate, GroundTruth, QueryWorkload};

fn main() {
    let scale = Scale::from_env();
    eprintln!("[fig10a] generating NJ-road stand-in...");
    let data = nj_road(scale);
    eprintln!(
        "[fig10a] indexing ground truth over {} rects...",
        data.len()
    );
    let truth = GroundTruth::index(&data);

    let region_counts = [100usize, 400, 1_600, 6_400, 10_000, 25_600, 40_000];
    let qsizes = [0.05, 0.25];
    let names: Vec<String> = qsizes
        .iter()
        .map(|q| format!("QSize {:.0}%", q * 100.0))
        .collect();

    // One workload per query size, reused across region settings so the
    // comparison isolates the region parameter.
    let workloads: Vec<(QueryWorkload, Vec<usize>)> = qsizes
        .iter()
        .enumerate()
        .map(|(i, &qs)| {
            let w = QueryWorkload::generate(&data, qs, scale.queries, 1_000 + i as u64);
            let counts = truth.counts(w.queries());
            (w, counts)
        })
        .collect();

    let mut rows = Vec::new();
    for &regions in &region_counts {
        eprintln!("[fig10a] {regions} regions...");
        let hist = MinSkewBuilder::new(100).regions(regions).build(&data);
        let vals = workloads
            .iter()
            .map(|(w, counts)| evaluate(&hist, w, counts).avg_relative_error)
            .collect();
        rows.push((format!("{regions:>6} regions"), vals));
    }
    print_error_table(
        "Figure 10(a): Min-Skew error vs regions (NJ Road, 100 buckets)",
        "Regions",
        &names,
        &rows,
    );
}
