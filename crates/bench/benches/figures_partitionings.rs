//! Figures 1–7: the Charminar dataset, its density surface, and the
//! 50-bucket partitionings produced by each technique, rendered as SVG
//! files under `target/figures/`.
//!
//! Qualitative expectations from the paper: Equi-Area tiles the space into
//! nearly identical buckets; Equi-Count concentrates buckets in the dense
//! corners; the R-tree partitioning looks drastically different (organic,
//! overlapping boxes); Min-Skew isolates the skewed corners while covering
//! the uniform interior with few large buckets.

use minskew_bench::{charminar_scaled, Scale};
use minskew_core::{
    build_equi_area, build_equi_count, build_rtree_partitioning_default, MinSkewBuilder,
};
use minskew_data::DensityGrid;
use minskew_viz::{dataset_svg, density_svg, partitioning_svg};

fn main() {
    let scale = Scale::from_env();
    eprintln!("[figures] generating Charminar...");
    let data = charminar_scaled(scale);
    let out_dir = std::path::Path::new("target/figures");
    std::fs::create_dir_all(out_dir).expect("create target/figures");

    let save = |name: &str, svg: String| {
        let path = out_dir.join(name);
        std::fs::write(&path, svg).expect("write figure");
        println!("wrote {}", path.display());
    };

    eprintln!("[figures] figure 1: dataset...");
    save("fig1_charminar.svg", dataset_svg(&data, 800));

    eprintln!("[figures] figure 2: Equi-Area (50 buckets)...");
    let ea = build_equi_area(&data, 50);
    save("fig2_equi_area.svg", partitioning_svg(&data, &ea, 800));

    eprintln!("[figures] figure 3: Equi-Count (50 buckets)...");
    let ec = build_equi_count(&data, 50);
    save("fig3_equi_count.svg", partitioning_svg(&data, &ec, 800));

    eprintln!("[figures] figure 4: R-Tree (50 buckets)...");
    let rt = build_rtree_partitioning_default(&data, 50);
    save("fig4_rtree.svg", partitioning_svg(&data, &rt, 800));

    eprintln!("[figures] figure 5: 50x50 density grid...");
    let grid = DensityGrid::build(data.rects().iter(), data.stats().mbr, 50, 50);
    save("fig5_density.svg", density_svg(&grid, 800));

    eprintln!("[figures] figure 6: Min-Skew construction progress...");
    // The paper's Figure 6 illustrates the algorithm mid-flight; we render
    // the greedy partitioning at increasing bucket budgets, which shows the
    // same thing: early cuts isolate the broad corner structure, later
    // cuts refine the dense areas.
    for buckets in [4usize, 12, 25] {
        let h = MinSkewBuilder::new(buckets).regions(2_500).build(&data);
        save(
            &format!("fig6_minskew_progress_{buckets:02}.svg"),
            partitioning_svg(&data, &h, 800),
        );
    }

    eprintln!("[figures] figure 7: Min-Skew (50 buckets)...");
    let ms = MinSkewBuilder::new(50).regions(2_500).build(&data);
    save("fig7_minskew.svg", partitioning_svg(&data, &ms, 800));

    println!(
        "\nbucket counts: Equi-Area {}, Equi-Count {}, R-Tree {}, Min-Skew {}",
        ea.num_buckets(),
        ec.num_buckets(),
        rt.num_buckets(),
        ms.num_buckets()
    );
}
