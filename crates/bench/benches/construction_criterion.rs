//! Criterion micro-benchmarks of partitioning construction and estimation,
//! complementing Table 1's wall-clock numbers with statistically robust
//! timings at a fixed input size.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use minskew_core::{
    build_equi_area, build_equi_count, build_rtree_partitioning, build_uniform, MinSkewBuilder,
    RTreeBuildMethod, RTreePartitioningOptions, SamplingEstimator, SpatialEstimator,
};
use minskew_datagen::SyntheticSpec;
use minskew_workload::QueryWorkload;

const N: usize = 50_000;
const BUCKETS: usize = 100;

fn construction_benches(c: &mut Criterion) {
    let data = SyntheticSpec::default().with_n(N).generate(0xC0FFEE);
    let mut g = c.benchmark_group("construction_50k_100buckets");
    g.sample_size(10);
    g.bench_function("min_skew", |b| {
        b.iter(|| MinSkewBuilder::new(BUCKETS).regions(10_000).build(&data))
    });
    g.bench_function("min_skew_3_refinements", |b| {
        b.iter(|| {
            MinSkewBuilder::new(BUCKETS)
                .regions(10_000)
                .progressive_refinements(3)
                .build(&data)
        })
    });
    g.bench_function("equi_area", |b| b.iter(|| build_equi_area(&data, BUCKETS)));
    g.bench_function("equi_count", |b| b.iter(|| build_equi_count(&data, BUCKETS)));
    g.bench_function("rtree_insertion", |b| {
        b.iter(|| build_rtree_partitioning(&data, BUCKETS, RTreePartitioningOptions::default()))
    });
    g.bench_function("rtree_bulk", |b| {
        b.iter(|| {
            build_rtree_partitioning(
                &data,
                BUCKETS,
                RTreePartitioningOptions {
                    method: RTreeBuildMethod::StrBulk,
                    ..Default::default()
                },
            )
        })
    });
    g.bench_function("rtree_hilbert", |b| {
        b.iter(|| {
            build_rtree_partitioning(
                &data,
                BUCKETS,
                RTreePartitioningOptions {
                    method: RTreeBuildMethod::HilbertBulk,
                    ..Default::default()
                },
            )
        })
    });
    g.bench_function("sampling", |b| {
        b.iter(|| SamplingEstimator::build(&data, BUCKETS, 1))
    });
    g.bench_function("uniform", |b| b.iter(|| build_uniform(&data)));
    g.finish();
}

fn estimation_benches(c: &mut Criterion) {
    let data = SyntheticSpec::default().with_n(N).generate(0xC0FFEE);
    let hist = MinSkewBuilder::new(BUCKETS).regions(10_000).build(&data);
    let queries = QueryWorkload::generate(&data, 0.1, 1_000, 7);
    let mut g = c.benchmark_group("estimation");
    g.bench_function("min_skew_1000_queries", |b| {
        b.iter_batched(
            || queries.queries().to_vec(),
            |qs| {
                let mut acc = 0.0;
                for q in &qs {
                    acc += hist.estimate_count(q);
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, construction_benches, estimation_benches);
criterion_main!(benches);
