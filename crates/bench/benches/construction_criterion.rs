//! Micro-benchmarks of partitioning construction and estimation,
//! complementing Table 1's wall-clock numbers with repeated timings at a
//! fixed input size.
//!
//! Formerly a criterion harness; the workspace now builds with no external
//! dependencies, so this uses a small median-of-runs timer instead.

use minskew_bench::time_it;
use minskew_core::{
    build_equi_area, build_equi_count, build_rtree_partitioning, build_uniform, MinSkewBuilder,
    RTreeBuildMethod, RTreePartitioningOptions, SamplingEstimator, SpatialEstimator,
};
use minskew_datagen::SyntheticSpec;
use minskew_workload::QueryWorkload;

const N: usize = 50_000;
const BUCKETS: usize = 100;
const RUNS: usize = 10;

/// Times `f` RUNS times and prints min/median wall-clock seconds.
fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    let mut times: Vec<f64> = (0..RUNS)
        .map(|_| {
            let (out, secs) = time_it(&mut f);
            std::hint::black_box(out);
            secs
        })
        .collect();
    times.sort_by(f64::total_cmp);
    println!(
        "| {name:<24} | {:>10.3} ms | {:>10.3} ms |",
        times[0] * 1e3,
        times[times.len() / 2] * 1e3,
    );
}

fn main() {
    let data = SyntheticSpec::default().with_n(N).generate(0xC0FFEE);

    println!("\n## construction_50k_100buckets\n");
    println!("| {:<24} | {:>13} | {:>13} |", "bench", "min", "median");
    println!("|{}|{}|{}|", "-".repeat(26), "-".repeat(15), "-".repeat(15));
    bench("min_skew", || {
        MinSkewBuilder::new(BUCKETS).regions(10_000).build(&data)
    });
    bench("min_skew_3_refinements", || {
        MinSkewBuilder::new(BUCKETS)
            .regions(10_000)
            .progressive_refinements(3)
            .build(&data)
    });
    bench("equi_area", || build_equi_area(&data, BUCKETS));
    bench("equi_count", || build_equi_count(&data, BUCKETS));
    bench("rtree_insertion", || {
        build_rtree_partitioning(&data, BUCKETS, RTreePartitioningOptions::default())
    });
    bench("rtree_bulk", || {
        build_rtree_partitioning(
            &data,
            BUCKETS,
            RTreePartitioningOptions {
                method: RTreeBuildMethod::StrBulk,
                ..Default::default()
            },
        )
    });
    bench("rtree_hilbert", || {
        build_rtree_partitioning(
            &data,
            BUCKETS,
            RTreePartitioningOptions {
                method: RTreeBuildMethod::HilbertBulk,
                ..Default::default()
            },
        )
    });
    bench("sampling", || SamplingEstimator::build(&data, BUCKETS, 1));
    bench("uniform", || build_uniform(&data));

    println!("\n## estimation\n");
    println!("| {:<24} | {:>13} | {:>13} |", "bench", "min", "median");
    println!("|{}|{}|{}|", "-".repeat(26), "-".repeat(15), "-".repeat(15));
    let hist = MinSkewBuilder::new(BUCKETS).regions(10_000).build(&data);
    let queries = QueryWorkload::generate(&data, 0.1, 1_000, 7);
    bench("min_skew_1000_queries", || {
        let mut acc = 0.0;
        for q in queries.queries() {
            acc += hist.estimate_count(q);
        }
        acc
    });
    println!();
}
