//! Observability overhead: the engine's serving path timed with metrics
//! enabled (default sampling, accuracy reservoir on) against the same path
//! with `TableOptions::metrics = false`, on both the cached and the
//! uncached serving configurations — with the bit-identity contract
//! re-checked before timing (instrumentation that changes an estimate is a
//! bug, not an acceptable cost). A third column arms the flight recorder
//! at its worst case (`flight_sample = 1`: every single query is encoded
//! into the seqlock ring) and holds it to the same ≤5% budget.
//!
//! The contract under test is the observability layer's ≤5% serving
//! overhead budget: with metrics on, every call pays a few plain integer
//! bumps under the already-held serving lock, one in
//! `metrics_sampling` calls pays the stage-timing clock reads, and
//! uncached computes pay one splitmix64 step for the accuracy reservoir.
//! Nothing on the hot path touches the registry (publication happens on
//! read).
//!
//! Writes machine-readable results to `BENCH_obs.json` at the workspace
//! root. `host_cpus` is recorded honestly; the serving path is
//! single-threaded, so the overhead ratio is meaningful on a 1-CPU
//! container too. `MINSKEW_QUICK=1` shrinks the inputs for a smoke run.

use minskew_bench::{charminar_scaled, time_it, Scale, DEFAULT_REGIONS};
use minskew_engine::{AnalyzeOptions, SpatialTable, StatsTechnique, TableOptions};
use minskew_geom::Rect;
use minskew_workload::QueryWorkload;
use std::hint::black_box;
use std::path::Path;

const BUCKETS: usize = 200;
const REPS: usize = 41;

struct Row {
    path: &'static str,
    qps_metrics_off: f64,
    qps_metrics_on: f64,
    qps_recorder_on: f64,
}

impl Row {
    /// Metrics overhead against the uninstrumented table.
    fn overhead_pct(&self) -> f64 {
        (self.qps_metrics_off - self.qps_metrics_on) / self.qps_metrics_off * 100.0
    }

    /// Recorder-on overhead against recorder-off — both with metrics on,
    /// so this isolates the flight ring's own cost (the ≤5% contract).
    fn recorder_overhead_pct(&self) -> f64 {
        (self.qps_metrics_on - self.qps_recorder_on) / self.qps_metrics_on * 100.0
    }
}

fn build_table(
    data: &minskew_data::Dataset,
    metrics: bool,
    cache: bool,
    flight_sample: u32,
) -> SpatialTable {
    let mut table = SpatialTable::new(TableOptions {
        analyze: AnalyzeOptions {
            technique: StatsTechnique::MinSkew,
            buckets: BUCKETS,
            regions: DEFAULT_REGIONS,
            refinements: 0,
        },
        metrics,
        query_cache: cache,
        flight_sample,
        ..TableOptions::default()
    });
    for r in data.rects() {
        table.insert(*r);
    }
    table.analyze();
    table
}

/// Times `rounds` passes over the query pool on both tables and returns
/// the row — after asserting the two configurations agree to the bit.
fn bench_path(
    path: &'static str,
    off: &SpatialTable,
    on: &SpatialTable,
    recorder: &SpatialTable,
    pool: &[Rect],
    rounds: usize,
) -> Row {
    let reference: Vec<u64> = pool.iter().map(|q| off.estimate(q).to_bits()).collect();
    for (label, table) in [("metrics", on), ("recorder", recorder)] {
        let instrumented: Vec<u64> = pool.iter().map(|q| table.estimate(q).to_bits()).collect();
        assert_eq!(
            instrumented, reference,
            "{label} changed an estimate on the {path} path"
        );
    }

    // Split the work into many short passes: on a shared 1-CPU container,
    // scheduler-steal windows last longer than one long pass, so a few
    // long repetitions let one configuration eat the whole window. Short
    // passes interleaved across the three configurations land steal on all
    // of them alike, and the median discards the poisoned passes.
    let pass_rounds = (rounds / 8).max(1);
    let calls = (pool.len() * pass_rounds) as f64;
    let one_pass = |table: &SpatialTable| {
        let (_, secs) = time_it(|| {
            let mut acc = 0.0;
            for _ in 0..pass_rounds {
                for q in pool {
                    acc += table.estimate(q);
                }
            }
            black_box(acc)
        });
        secs
    };
    let mut samples = [[0.0f64; 3]; REPS];
    for pass in samples.iter_mut() {
        for (slot, table) in [off, on, recorder].into_iter().enumerate() {
            pass[slot] = one_pass(table);
        }
    }
    let median = |slot: usize| {
        let mut s: Vec<f64> = samples.iter().map(|pass| pass[slot]).collect();
        s.sort_by(f64::total_cmp);
        s[REPS / 2]
    };
    Row {
        path,
        qps_metrics_off: calls / median(0),
        qps_metrics_on: calls / median(1),
        qps_recorder_on: calls / median(2),
    }
}

fn main() {
    let scale = Scale::from_env();
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    eprintln!(
        "[obs] host_cpus = {host_cpus}, quick = {}, obs enabled = {}",
        scale.data_divisor != 1,
        minskew_obs::enabled()
    );

    let data = charminar_scaled(scale);
    let pool_size = scale.queries.min(1_000);
    let workload = QueryWorkload::generate(&data, 0.05, pool_size, 0xB0B5);
    let pool: Vec<Rect> = workload.queries().to_vec();
    let rounds = (200_000 / (pool.len() * scale.data_divisor)).max(2);

    let mut rows = Vec::new();
    for (path, cache) in [("uncached", false), ("cached", true)] {
        let off = build_table(&data, false, cache, 0);
        let on = build_table(&data, true, cache, 0);
        // Worst-case recorder: every query encoded into the flight ring.
        let recorder = build_table(&data, true, cache, 1);
        if cache {
            // Warm the caches so the timed loop measures steady-state hits.
            for q in &pool {
                let _ = off.estimate(q);
                let _ = on.estimate(q);
                let _ = recorder.estimate(q);
            }
        }
        let row = bench_path(path, &off, &on, &recorder, &pool, rounds);
        eprintln!(
            "[obs] {path}: metrics off {:.0} q/s, on {:.0} q/s ({:.2}%), \
             recorder on {:.0} q/s ({:+.2}% vs recorder-off)",
            row.qps_metrics_off,
            row.qps_metrics_on,
            row.overhead_pct(),
            row.qps_recorder_on,
            row.recorder_overhead_pct()
        );
        rows.push(row);
    }

    println!("\n## Observability overhead (queries/sec, median of {REPS})\n");
    println!("| path | metrics off | metrics on | overhead | recorder on | vs recorder-off |");
    println!("|------|-------------|------------|----------|-------------|-----------------|");
    for r in &rows {
        println!(
            "| {} | {:.0} | {:.0} | {:.2}% | {:.0} | {:+.2}% |",
            r.path,
            r.qps_metrics_off,
            r.qps_metrics_on,
            r.overhead_pct(),
            r.qps_recorder_on,
            r.recorder_overhead_pct()
        );
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(&format!("  \"rects\": {},\n", data.len()));
    json.push_str(&format!("  \"buckets\": {BUCKETS},\n"));
    json.push_str(&format!(
        "  \"metrics_sampling\": {},\n",
        TableOptions::default().metrics_sampling
    ));
    json.push_str(&format!("  \"quick\": {},\n", scale.data_divisor != 1));
    json.push_str(
        "  \"note\": \"single-query serving, metrics on (default sampling + \
         accuracy reservoir) vs TableOptions::metrics = false; recorder_on \
         additionally arms the flight recorder at flight_sample = 1 (every \
         query encoded into the seqlock ring, the worst case) and its \
         recorder_overhead_pct is measured against metrics-on with the \
         recorder off, isolating the ring's own cost; estimates bit-checked \
         equal before timing; contract is <= 5% overhead\",\n",
    );
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"path\": \"{}\", \"qps_metrics_off\": {:.1}, \
             \"qps_metrics_on\": {:.1}, \"overhead_pct\": {:.2}, \
             \"qps_recorder_on\": {:.1}, \"recorder_overhead_pct\": {:.2}}}{}\n",
            r.path,
            r.qps_metrics_off,
            r.qps_metrics_on,
            r.overhead_pct(),
            r.qps_recorder_on,
            r.recorder_overhead_pct(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_obs.json");
    std::fs::write(&out, json).expect("write BENCH_obs.json");
    println!("\nwrote {}", out.display());
}
