//! Observability overhead: the engine's serving path timed with metrics
//! enabled (default sampling, accuracy reservoir on) against the same path
//! with `TableOptions::metrics = false`, on both the cached and the
//! uncached serving configurations — with the bit-identity contract
//! re-checked before timing (instrumentation that changes an estimate is a
//! bug, not an acceptable cost).
//!
//! The contract under test is the observability layer's ≤5% serving
//! overhead budget: with metrics on, every call pays a few plain integer
//! bumps under the already-held serving lock, one in
//! `metrics_sampling` calls pays the stage-timing clock reads, and
//! uncached computes pay one splitmix64 step for the accuracy reservoir.
//! Nothing on the hot path touches the registry (publication happens on
//! read).
//!
//! Writes machine-readable results to `BENCH_obs.json` at the workspace
//! root. `host_cpus` is recorded honestly; the serving path is
//! single-threaded, so the overhead ratio is meaningful on a 1-CPU
//! container too. `MINSKEW_QUICK=1` shrinks the inputs for a smoke run.

use minskew_bench::{charminar_scaled, time_it, Scale, DEFAULT_REGIONS};
use minskew_engine::{AnalyzeOptions, SpatialTable, StatsTechnique, TableOptions};
use minskew_geom::Rect;
use minskew_workload::QueryWorkload;
use std::hint::black_box;
use std::path::Path;

const BUCKETS: usize = 200;
const REPS: usize = 5;

/// Best-of-`REPS` wall-clock seconds for `f`.
fn best_of<T>(mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let (_, secs) = time_it(&mut f);
        best = best.min(secs);
    }
    best
}

struct Row {
    path: &'static str,
    qps_metrics_off: f64,
    qps_metrics_on: f64,
}

impl Row {
    fn overhead_pct(&self) -> f64 {
        (self.qps_metrics_off - self.qps_metrics_on) / self.qps_metrics_off * 100.0
    }
}

fn build_table(data: &minskew_data::Dataset, metrics: bool, cache: bool) -> SpatialTable {
    let mut table = SpatialTable::new(TableOptions {
        analyze: AnalyzeOptions {
            technique: StatsTechnique::MinSkew,
            buckets: BUCKETS,
            regions: DEFAULT_REGIONS,
            refinements: 0,
        },
        metrics,
        query_cache: cache,
        ..TableOptions::default()
    });
    for r in data.rects() {
        table.insert(*r);
    }
    table.analyze();
    table
}

/// Times `rounds` passes over the query pool on both tables and returns
/// the row — after asserting the two configurations agree to the bit.
fn bench_path(
    path: &'static str,
    off: &SpatialTable,
    on: &SpatialTable,
    pool: &[Rect],
    rounds: usize,
) -> Row {
    let reference: Vec<u64> = pool.iter().map(|q| off.estimate(q).to_bits()).collect();
    let instrumented: Vec<u64> = pool.iter().map(|q| on.estimate(q).to_bits()).collect();
    assert_eq!(
        instrumented, reference,
        "metrics changed an estimate on the {path} path"
    );

    let calls = (pool.len() * rounds) as f64;
    let timed = |table: &SpatialTable| {
        best_of(|| {
            let mut acc = 0.0;
            for _ in 0..rounds {
                for q in pool {
                    acc += table.estimate(q);
                }
            }
            black_box(acc)
        })
    };
    Row {
        path,
        qps_metrics_off: calls / timed(off),
        qps_metrics_on: calls / timed(on),
    }
}

fn main() {
    let scale = Scale::from_env();
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    eprintln!(
        "[obs] host_cpus = {host_cpus}, quick = {}, obs enabled = {}",
        scale.data_divisor != 1,
        minskew_obs::enabled()
    );

    let data = charminar_scaled(scale);
    let pool_size = scale.queries.min(1_000);
    let workload = QueryWorkload::generate(&data, 0.05, pool_size, 0xB0B5);
    let pool: Vec<Rect> = workload.queries().to_vec();
    let rounds = (200_000 / (pool.len() * scale.data_divisor)).max(2);

    let mut rows = Vec::new();
    for (path, cache) in [("uncached", false), ("cached", true)] {
        let off = build_table(&data, false, cache);
        let on = build_table(&data, true, cache);
        if cache {
            // Warm both caches so the timed loop measures steady-state hits.
            for q in &pool {
                let _ = off.estimate(q);
                let _ = on.estimate(q);
            }
        }
        let row = bench_path(path, &off, &on, &pool, rounds);
        eprintln!(
            "[obs] {path}: metrics off {:.0} q/s, on {:.0} q/s, overhead {:.2}%",
            row.qps_metrics_off,
            row.qps_metrics_on,
            row.overhead_pct()
        );
        rows.push(row);
    }

    println!("\n## Observability overhead (queries/sec, best of {REPS})\n");
    println!("| path | metrics off | metrics on | overhead |");
    println!("|------|-------------|------------|----------|");
    for r in &rows {
        println!(
            "| {} | {:.0} | {:.0} | {:.2}% |",
            r.path,
            r.qps_metrics_off,
            r.qps_metrics_on,
            r.overhead_pct()
        );
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(&format!("  \"rects\": {},\n", data.len()));
    json.push_str(&format!("  \"buckets\": {BUCKETS},\n"));
    json.push_str(&format!(
        "  \"metrics_sampling\": {},\n",
        TableOptions::default().metrics_sampling
    ));
    json.push_str(&format!("  \"quick\": {},\n", scale.data_divisor != 1));
    json.push_str(
        "  \"note\": \"single-query serving, metrics on (default sampling + \
         accuracy reservoir) vs TableOptions::metrics = false; estimates \
         bit-checked equal before timing; contract is <= 5% overhead\",\n",
    );
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"path\": \"{}\", \"qps_metrics_off\": {:.1}, \
             \"qps_metrics_on\": {:.1}, \"overhead_pct\": {:.2}}}{}\n",
            r.path,
            r.qps_metrics_off,
            r.qps_metrics_on,
            r.overhead_pct(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_obs.json");
    std::fs::write(&out, json).expect("write BENCH_obs.json");
    println!("\nwrote {}", out.display());
}
