//! Load generator for the TCP serving front-end: end-to-end requests/sec
//! through a real socket, for single-query (`ESTIMATE`) and batched
//! (`BATCH`) traffic, at shard counts 1 and 4 and client concurrency 1
//! and 4 — with the bit-identity contract re-checked inline: every reply
//! is parsed and compared against the engine's own estimate, so a
//! throughput number that changes an answer fails the run instead of
//! reporting a win.
//!
//! Writes machine-readable results to `BENCH_serve.json` at the workspace
//! root. `host_cpus` is recorded honestly — on a 1-CPU container the
//! concurrency rows measure protocol/scheduling overhead, not parallel
//! speedup; the interesting comparison there is ESTIMATE vs BATCH (syscall
//! amortisation) and the flat cost of sharding (the router must be free
//! when it cannot help).
//!
//! `MINSKEW_QUICK=1` shrinks the workload for a smoke run.

use minskew_bench::{charminar_scaled, Scale};
use minskew_engine::{serve, ServeOptions, SpatialCatalog, TableOptions};
use minskew_geom::Rect;
use minskew_workload::QueryWorkload;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

const BATCH_SIZE: usize = 64;

#[derive(Clone, Copy)]
enum Mode {
    Estimate,
    Batch,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Estimate => "ESTIMATE",
            Mode::Batch => "BATCH",
        }
    }
}

struct Row {
    mode: &'static str,
    shards: usize,
    clients: usize,
    queries: usize,
    qps: f64,
}

/// One client thread: drives `rounds` passes over the pool through a
/// persistent connection, checking every reply against the expected bits.
fn drive_client(
    addr: std::net::SocketAddr,
    pool: &[Rect],
    expected: &[u64],
    rounds: usize,
    mode: Mode,
) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    let read_reply = |reader: &mut BufReader<TcpStream>, reply: &mut String| {
        reply.clear();
        reader.read_line(reply).expect("read reply");
    };
    match mode {
        Mode::Estimate => {
            for _ in 0..rounds {
                for (i, q) in pool.iter().enumerate() {
                    let request = format!(
                        "ESTIMATE roads {} {} {} {}\n",
                        q.lo.x, q.lo.y, q.hi.x, q.hi.y
                    );
                    reader
                        .get_mut()
                        .write_all(request.as_bytes())
                        .expect("write");
                    read_reply(&mut reader, &mut reply);
                    let got: f64 = reply
                        .trim_end()
                        .strip_prefix("OK ")
                        .unwrap_or_else(|| panic!("bad reply {reply:?}"))
                        .parse()
                        .expect("parse estimate");
                    assert_eq!(
                        got.to_bits(),
                        expected[i],
                        "wire estimate diverged from the engine (query {i})"
                    );
                }
            }
        }
        Mode::Batch => {
            for _ in 0..rounds {
                for (chunk_at, chunk) in pool.chunks(BATCH_SIZE).enumerate() {
                    let mut request = format!("BATCH roads {}", chunk.len());
                    for q in chunk {
                        request.push_str(&format!(" {} {} {} {}", q.lo.x, q.lo.y, q.hi.x, q.hi.y));
                    }
                    request.push('\n');
                    reader
                        .get_mut()
                        .write_all(request.as_bytes())
                        .expect("write");
                    read_reply(&mut reader, &mut reply);
                    let payload = reply
                        .trim_end()
                        .strip_prefix("OK ")
                        .unwrap_or_else(|| panic!("bad reply {reply:?}"));
                    for (j, token) in payload.split(' ').enumerate() {
                        let got: f64 = token.parse().expect("parse batch value");
                        assert_eq!(
                            got.to_bits(),
                            expected[chunk_at * BATCH_SIZE + j],
                            "batched wire estimate diverged (chunk {chunk_at}, item {j})"
                        );
                    }
                }
            }
        }
    }
}

fn run_config(
    data: &minskew_data::Dataset,
    pool: &[Rect],
    shards: usize,
    clients: usize,
    rounds: usize,
    mode: Mode,
) -> Row {
    let catalog = Arc::new(SpatialCatalog::new());
    let entry = catalog
        .create(
            "roads",
            TableOptions {
                shards,
                ..TableOptions::default()
            },
        )
        .expect("create table");
    {
        let mut table = entry.table();
        for r in data.rects() {
            table.insert(*r);
        }
        table.analyze();
    }
    let expected: Vec<u64> = {
        let table = entry.table();
        pool.iter().map(|q| table.estimate(q).to_bits()).collect()
    };
    let handle = serve(catalog, ServeOptions::default()).expect("bind server");
    let addr = handle.addr();

    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| drive_client(addr, pool, &expected, rounds, mode));
        }
    });
    let secs = start.elapsed().as_secs_f64();
    handle.shutdown();

    let queries = clients * rounds * pool.len();
    Row {
        mode: mode.label(),
        shards,
        clients,
        queries,
        qps: queries as f64 / secs,
    }
}

fn main() {
    let scale = Scale::from_env();
    let quick = scale.data_divisor != 1;
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    eprintln!("[serve] host_cpus = {host_cpus}, quick = {quick}");

    let data = charminar_scaled(scale);
    let pool_size = scale.queries.clamp(BATCH_SIZE, 512);
    let workload = QueryWorkload::generate(&data, 0.05, pool_size, 0x10AD);
    let pool: Vec<Rect> = workload.queries().to_vec();
    let rounds = if quick { 1 } else { 8 };

    let mut rows = Vec::new();
    for mode in [Mode::Estimate, Mode::Batch] {
        for shards in [1usize, 4] {
            for clients in [1usize, 4] {
                let row = run_config(&data, &pool, shards, clients, rounds, mode);
                eprintln!(
                    "[serve] {} shards={} clients={}: {:.0} q/s ({} queries)",
                    row.mode, row.shards, row.clients, row.qps, row.queries
                );
                rows.push(row);
            }
        }
    }

    println!("\n## TCP serving throughput (end-to-end queries/sec)\n");
    println!("| mode | shards | clients | queries | qps |");
    println!("|------|--------|---------|---------|-----|");
    for r in &rows {
        println!(
            "| {} | {} | {} | {} | {:.0} |",
            r.mode, r.shards, r.clients, r.queries, r.qps
        );
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(&format!("  \"rects\": {},\n", data.len()));
    json.push_str(&format!("  \"query_pool\": {},\n", pool.len()));
    json.push_str(&format!("  \"batch_size\": {BATCH_SIZE},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(
        "  \"note\": \"end-to-end TCP loopback traffic with inline bitwise \
         verification of every reply against the engine; on a 1-CPU host \
         the clients=4 rows measure scheduling overhead, not parallelism; \
         BATCH amortises syscalls over 64 queries per request\",\n",
    );
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"shards\": {}, \"clients\": {}, \
             \"queries\": {}, \"qps\": {:.1}}}{}\n",
            r.mode,
            r.shards,
            r.clients,
            r.queries,
            r.qps,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    std::fs::write(&out, json).expect("write BENCH_serve.json");
    eprintln!("[serve] wrote {}", out.display());
}
