//! Extension experiment: range queries over *point* data (Sequoia-style).
//!
//! The paper's second real-life dataset (Sequoia 2000 landmark points) is
//! deferred to its unpublished full version. This bench fills the slot
//! with the clustered-point generator: every input is a degenerate
//! (zero-area) rectangle, exercising the estimators' degenerate-axis
//! handling at scale, and matching the setting the Fractal technique was
//! actually designed for.
//!
//! Expected: the bucket techniques keep their ordering; Fractal — designed
//! for exactly this case — becomes *competitive with the simple baselines*
//! (far better than its rectangle-data showing), which is the fair version
//! of the paper's "in defense of the technique" remark.

use minskew_bench::{all_techniques, print_error_table, run_point, Scale};
use minskew_datagen::{clustered_points, ClusteredPointSpec};
use minskew_workload::GroundTruth;

fn main() {
    let scale = Scale::from_env();
    let spec = ClusteredPointSpec {
        n: 62_000 / scale.data_divisor,
        ..ClusteredPointSpec::default()
    };
    eprintln!("[point-data] generating {} clustered points...", spec.n);
    let data = clustered_points(&spec, 0x5E0A);
    let truth = GroundTruth::index(&data);
    let estimators = all_techniques(&data, 100);
    let names: Vec<String> = estimators.iter().map(|e| e.name().to_owned()).collect();

    let mut rows = Vec::new();
    for (i, qs) in [0.02, 0.05, 0.10, 0.25].into_iter().enumerate() {
        eprintln!("[point-data] QSize {:.0}%...", qs * 100.0);
        let reports = run_point(
            &data,
            &truth,
            &estimators,
            qs,
            scale.queries,
            9_000 + i as u64,
        );
        rows.push((
            format!("QSize {:>4.0}%", qs * 100.0),
            reports.iter().map(|r| r.avg_relative_error).collect(),
        ));
    }
    print_error_table(
        "Extension: Sequoia-style point data (100 buckets)",
        "QSize",
        &names,
        &rows,
    );
}
