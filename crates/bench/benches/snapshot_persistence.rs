//! Snapshot persistence cost: how fast can statistics be saved, verified,
//! and loaded from the durable snapshot container — and how does loading a
//! snapshot compare with the alternative recovery path of rebuilding the
//! statistics from the raw data (`ANALYZE`)?
//!
//! The operational question the numbers answer: after a restart, is
//! restoring the catalog from a snapshot actually cheaper than re-running
//! ANALYZE? The snapshot path does one decode + checksum pass over a few
//! KB; the rebuild scans every rectangle. The ratio is the payoff of the
//! durability subsystem.
//!
//! Writes machine-readable results to `BENCH_snapshot.json` at the
//! workspace root. `host_cpus` is recorded honestly; every timed path here
//! is single-threaded. `MINSKEW_QUICK=1` shrinks the inputs for a smoke
//! run.

use minskew_bench::{charminar_scaled, time_it, Scale, DEFAULT_REGIONS};
use minskew_core::{verify_snapshot, SpatialHistogram};
use minskew_engine::{AnalyzeOptions, SpatialTable, StatsTechnique, TableOptions};
use std::hint::black_box;
use std::path::Path;

const BUCKETS: usize = 200;
const REPS: usize = 7;

/// Best-of-`REPS` wall-clock seconds for `f`.
fn best_of<T>(mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let (_, secs) = time_it(&mut f);
        best = best.min(secs);
    }
    best
}

fn main() {
    let scale = Scale::from_env();
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let quick = scale.data_divisor != 1;
    eprintln!("[snapshot] host_cpus = {host_cpus}, quick = {quick}");

    let data = charminar_scaled(scale);
    let mut table = SpatialTable::new(TableOptions {
        analyze: AnalyzeOptions {
            technique: StatsTechnique::MinSkew,
            buckets: BUCKETS,
            regions: DEFAULT_REGIONS,
            refinements: 0,
        },
        ..TableOptions::default()
    });
    for r in data.rects() {
        table.insert(*r);
    }

    // The rebuild-from-data alternative: a full ANALYZE.
    let analyze_s = best_of(|| {
        table.analyze();
        black_box(table.stats().map(|s| s.num_buckets()))
    });

    let dir = std::env::temp_dir().join(format!("minskew-bench-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let path = dir.join("bench.snap");

    // Save: encode + checksum + atomic install (temp, fsync, rename).
    let save_s = best_of(|| {
        table.save_snapshot(&path).expect("save");
    });
    let bytes = std::fs::read(&path).expect("snapshot readable");
    let snapshot_bytes = bytes.len();

    // Verify: the read-only integrity pass a health check would run.
    let verify_s = best_of(|| black_box(verify_snapshot(black_box(&bytes)).expect("verifies")));

    // Load (decode only): bytes -> histogram, the pure recovery cost.
    let decode_s = best_of(|| {
        black_box(SpatialHistogram::from_snapshot_bytes(black_box(&bytes)).expect("decodes"))
    });

    // Load (end to end): file read + decode + install into the engine.
    let load_s = best_of(|| {
        table.try_load_snapshot(&path).expect("load");
    });

    std::fs::remove_dir_all(&dir).ok();

    let ratio = analyze_s / load_s.max(1e-12);
    eprintln!(
        "[snapshot] analyze {:.3} ms, save {:.3} ms, verify {:.4} ms, decode {:.4} ms, \
         load {:.3} ms ({}x cheaper than rebuild)",
        analyze_s * 1e3,
        save_s * 1e3,
        verify_s * 1e3,
        decode_s * 1e3,
        load_s * 1e3,
        ratio as u64,
    );

    println!("\n## Snapshot persistence latency (best of {REPS})\n");
    println!("| operation | latency (ms) |");
    println!("|-----------|--------------|");
    for (name, secs) in [
        ("rebuild from data (ANALYZE)", analyze_s),
        ("save (encode + atomic install)", save_s),
        ("verify (checksum pass)", verify_s),
        ("decode (bytes -> histogram)", decode_s),
        ("load (read + decode + install)", load_s),
    ] {
        println!("| {name} | {:.4} |", secs * 1e3);
    }
    println!("\nsnapshot restore is {ratio:.0}x cheaper than rebuilding from data");

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(&format!("  \"rects\": {},\n", data.len()));
    json.push_str(&format!("  \"buckets\": {BUCKETS},\n"));
    json.push_str(&format!("  \"snapshot_bytes\": {snapshot_bytes},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(
        "  \"note\": \"durable snapshot save/verify/load latency vs rebuilding \
         statistics from the raw data; save includes the atomic temp+fsync+rename \
         install; all paths single-threaded\",\n",
    );
    json.push_str(&format!("  \"analyze_ms\": {:.4},\n", analyze_s * 1e3));
    json.push_str(&format!("  \"save_ms\": {:.4},\n", save_s * 1e3));
    json.push_str(&format!("  \"verify_ms\": {:.4},\n", verify_s * 1e3));
    json.push_str(&format!("  \"decode_ms\": {:.4},\n", decode_s * 1e3));
    json.push_str(&format!("  \"load_ms\": {:.4},\n", load_s * 1e3));
    json.push_str(&format!("  \"load_vs_rebuild_speedup\": {ratio:.1}\n"));
    json.push_str("}\n");

    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_snapshot.json");
    std::fs::write(&out, json).expect("write BENCH_snapshot.json");
    println!("\nwrote {}", out.display());
}
