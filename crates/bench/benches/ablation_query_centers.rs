//! Ablation: query-centre model.
//!
//! The paper seeds query centres at input-rectangle centres (§5.2), so
//! queries concentrate where data lives. This ablation re-runs the main
//! comparison with centres *uniform over the input MBR* instead, probing
//! empty space as well.
//!
//! Expected: absolute errors shift for everyone (empty-region queries have
//! tiny true counts, and the Σ-normalised metric re-weights), but the
//! technique ordering — Min-Skew first — is robust to the workload model,
//! which is the property a query optimizer actually relies on.

use minskew_bench::{all_techniques, charminar_scaled, print_error_table, Scale};
use minskew_workload::{evaluate, CenterMode, GroundTruth, QueryWorkload};

fn main() {
    let scale = Scale::from_env();
    eprintln!("[ablation-centers] generating Charminar...");
    let data = charminar_scaled(scale);
    let truth = GroundTruth::index(&data);
    let estimators = all_techniques(&data, 100);
    let names: Vec<String> = estimators.iter().map(|e| e.name().to_owned()).collect();

    for (label, mode) in [
        ("data-seeded centres (paper)", CenterMode::DataCenters),
        ("uniform centres", CenterMode::UniformInMbr),
    ] {
        let mut rows = Vec::new();
        for (i, qs) in [0.05, 0.25].into_iter().enumerate() {
            let w = QueryWorkload::generate_with_centers(
                &data,
                qs,
                scale.queries,
                7_000 + i as u64,
                mode,
            );
            let counts = truth.counts(w.queries());
            if counts.iter().all(|&c| c == 0) {
                eprintln!("[ablation-centers] all-empty workload at {qs}; skipping");
                continue;
            }
            let vals = estimators
                .iter()
                .map(|e| evaluate(e.as_ref(), &w, &counts).avg_relative_error)
                .collect();
            rows.push((format!("QSize {:>4.0}%", qs * 100.0), vals));
        }
        print_error_table(
            &format!("Ablation: {label} (Charminar, 100 buckets)"),
            "QSize",
            &names,
            &rows,
        );
    }
}
