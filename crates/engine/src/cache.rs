//! A bounded LRU cache for query estimates, keyed on the query's raw f64
//! bits.
//!
//! Caching an estimate is sound only because every mutation path through
//! [`crate::SpatialTable`] (`insert`, `delete`, any statistics install —
//! `analyze`, `try_analyze`, `load_stats`, auto-`ANALYZE`) clears the cache
//! before the next read: a cached value is therefore always the value the
//! estimator would recompute, bit for bit. Keys are the four raw `f64` bit
//! patterns of the query rectangle, so two queries share an entry only when
//! they are the *same bits* — no epsilon matching, no rounding.
//!
//! The LRU list is intrusive: a slab of slots doubly linked through `u32`
//! indices, so a hit costs one hash lookup plus a few pointer swaps and
//! eviction is O(1) — no per-entry allocation after the slab fills.

use std::collections::HashMap;

use minskew_geom::Rect;

/// Sentinel index for "no slot".
const NONE: u32 = u32::MAX;

/// Cache key: the query rectangle's raw bit patterns
/// (`lo.x, lo.y, hi.x, hi.y`).
pub(crate) fn cache_key(query: &Rect) -> [u64; 4] {
    [
        query.lo.x.to_bits(),
        query.lo.y.to_bits(),
        query.hi.x.to_bits(),
        query.hi.y.to_bits(),
    ]
}

#[derive(Debug, Clone)]
struct Slot {
    key: [u64; 4],
    value: f64,
    prev: u32,
    next: u32,
}

/// Bounded LRU over `(query bits) -> estimate`. A capacity of `0` disables
/// insertion entirely (every lookup misses).
#[derive(Debug, Clone)]
pub(crate) struct QueryCache {
    capacity: usize,
    map: HashMap<[u64; 4], u32>,
    slots: Vec<Slot>,
    /// Most recently used slot.
    head: u32,
    /// Least recently used slot (the eviction victim).
    tail: u32,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl QueryCache {
    pub(crate) fn new(capacity: usize) -> QueryCache {
        QueryCache {
            // The slab is indexed by u32; reserve the sentinel.
            capacity: capacity.min(NONE as usize - 1),
            map: HashMap::new(),
            slots: Vec::new(),
            head: NONE,
            tail: NONE,
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    /// Configured capacity in entries (`0` = caching disabled).
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up a cached estimate, refreshing its recency on a hit.
    pub(crate) fn get(&mut self, key: &[u64; 4]) -> Option<f64> {
        match self.map.get(key).copied() {
            Some(i) => {
                self.hits += 1;
                self.move_to_front(i);
                Some(self.slots[i as usize].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) an estimate, evicting the least recently used
    /// entry when full.
    pub(crate) fn insert(&mut self, key: [u64; 4], value: f64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slots[i as usize].value = value;
            self.move_to_front(i);
            return;
        }
        let i = if self.slots.len() < self.capacity {
            let i = self.slots.len() as u32;
            self.slots.push(Slot {
                key,
                value,
                prev: NONE,
                next: NONE,
            });
            i
        } else {
            // Reuse the LRU victim's slot in place.
            let i = self.tail;
            debug_assert_ne!(i, NONE, "non-empty cache must have a tail");
            self.unlink(i);
            let slot = &mut self.slots[i as usize];
            self.map.remove(&slot.key);
            slot.key = key;
            slot.value = value;
            i
        };
        self.map.insert(key, i);
        self.push_front(i);
    }

    /// Drops every entry (the table mutated: all cached estimates are
    /// potentially stale). Counted only when the cache held something.
    pub(crate) fn invalidate(&mut self) {
        if !self.map.is_empty() {
            self.invalidations += 1;
        }
        self.map.clear();
        self.slots.clear();
        self.head = NONE;
        self.tail = NONE;
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    pub(crate) fn hits(&self) -> u64 {
        self.hits
    }

    pub(crate) fn misses(&self) -> u64 {
        self.misses
    }

    pub(crate) fn invalidations(&self) -> u64 {
        self.invalidations
    }

    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let s = &self.slots[i as usize];
            (s.prev, s.next)
        };
        if prev != NONE {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NONE {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: u32) {
        self.slots[i as usize].prev = NONE;
        self.slots[i as usize].next = self.head;
        if self.head != NONE {
            self.slots[self.head as usize].prev = i;
        }
        self.head = i;
        if self.tail == NONE {
            self.tail = i;
        }
    }

    fn move_to_front(&mut self, i: u32) {
        if self.head == i {
            return;
        }
        self.unlink(i);
        self.push_front(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> [u64; 4] {
        [n, n + 1, n + 2, n + 3]
    }

    #[test]
    fn hit_miss_and_counters() {
        let mut c = QueryCache::new(8);
        assert_eq!(c.get(&key(1)), None);
        c.insert(key(1), 42.5);
        assert_eq!(c.get(&key(1)), Some(42.5));
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = QueryCache::new(3);
        c.insert(key(1), 1.0);
        c.insert(key(2), 2.0);
        c.insert(key(3), 3.0);
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(c.get(&key(1)), Some(1.0));
        c.insert(key(4), 4.0);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(&key(2)), None, "LRU entry must be evicted");
        assert_eq!(c.get(&key(1)), Some(1.0));
        assert_eq!(c.get(&key(3)), Some(3.0));
        assert_eq!(c.get(&key(4)), Some(4.0));
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut c = QueryCache::new(2);
        c.insert(key(1), 1.0);
        c.insert(key(2), 2.0);
        c.insert(key(1), 10.0); // refresh: 2 is now the victim
        c.insert(key(3), 3.0);
        assert_eq!(c.get(&key(1)), Some(10.0));
        assert_eq!(c.get(&key(2)), None);
    }

    #[test]
    fn capacity_one_and_zero() {
        let mut c = QueryCache::new(1);
        c.insert(key(1), 1.0);
        c.insert(key(2), 2.0);
        assert_eq!(c.get(&key(1)), None);
        assert_eq!(c.get(&key(2)), Some(2.0));
        let mut off = QueryCache::new(0);
        off.insert(key(1), 1.0);
        assert_eq!(off.get(&key(1)), None);
        assert_eq!(off.len(), 0);
    }

    #[test]
    fn invalidate_clears_and_counts_once_per_nonempty_flush() {
        let mut c = QueryCache::new(4);
        c.invalidate(); // empty: not counted
        assert_eq!(c.invalidations(), 0);
        c.insert(key(1), 1.0);
        c.invalidate();
        c.invalidate(); // already empty again
        assert_eq!(c.invalidations(), 1);
        assert_eq!(c.get(&key(1)), None);
        // Still usable after a flush.
        c.insert(key(5), 5.0);
        assert_eq!(c.get(&key(5)), Some(5.0));
    }

    #[test]
    fn cache_key_is_raw_bits() {
        let a = cache_key(&Rect::new(0.0, 0.0, 1.0, 1.0));
        let b = cache_key(&Rect::new(-0.0, 0.0, 1.0, 1.0));
        assert_ne!(a, b, "-0.0 and 0.0 are distinct keys (conservative)");
        assert_eq!(a, cache_key(&Rect::new(0.0, 0.0, 1.0, 1.0)));
    }

    #[test]
    fn churn_past_capacity_stays_consistent() {
        let mut c = QueryCache::new(16);
        for round in 0u64..50 {
            for k in 0u64..40 {
                c.insert(key(round * 40 + k), (round * 40 + k) as f64);
            }
        }
        assert_eq!(c.len(), 16);
        // The 16 most recent survive, in full.
        for k in (50 * 40 - 16)..(50 * 40) {
            assert_eq!(c.get(&key(k)), Some(k as f64), "k={k}");
        }
    }
}
