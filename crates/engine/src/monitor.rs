//! Online accuracy monitoring: a deterministic reservoir of served queries
//! and the audit report comparing their estimates against exact counts.
//!
//! The paper's entire evaluation (§5) reduces to one number — the average
//! relative error `Σ|r_i − e_i| / Σ r_i` over a query workload — but a
//! running system has no offline workload to measure against. The monitor
//! closes that gap: the serving path samples the queries it actually
//! computes (cache misses, where the work already dwarfs the bookkeeping)
//! into a bounded reservoir, and [`crate::SpatialTable::audit_accuracy`]
//! periodically replays the reservoir against exact index counts to publish
//! a live error gauge and a drift signal that recommends re-`ANALYZE`.

use minskew_geom::Rect;

/// SplitMix64: a tiny, high-quality 64-bit mixer. Used to derive the
/// reservoir's replacement decisions deterministically from the number of
/// queries seen, so monitoring never perturbs — and is never perturbed by —
/// any other randomness in the process.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One reservoir slot: a sampled query plus, once an audit has replayed it,
/// the exact result count measured for it.
///
/// The cached exact count is keyed to the table's **data era** (its
/// insert/delete counter): data churn invalidates it (the exact count is no
/// longer exact), while statistics installs — including online-refine
/// installs — leave it intact. That retention is what feeds the refiner:
/// the (query, exact) pairs survive the very install they triggered, so the
/// next refine pass starts from replayed feedback instead of an empty
/// reservoir.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct FeedbackSample {
    /// The sampled query rectangle.
    pub(crate) query: Rect,
    /// Exact `|Q|` from the last audit, valid for the current data era;
    /// `None` until audited or after data churn invalidated it.
    pub(crate) exact: Option<f64>,
}

/// A fixed-capacity uniform reservoir over an unbounded query stream
/// (Vitter's Algorithm R with a deterministic splitmix64 coin).
///
/// After `seen` observations every query ever offered has the same
/// `capacity / seen` probability of being resident, so the reservoir is an
/// unbiased sample of the served workload — exactly what the paper's error
/// metric wants to be computed over.
#[derive(Debug)]
pub(crate) struct Reservoir {
    capacity: usize,
    seen: u64,
    samples: Vec<FeedbackSample>,
}

impl Reservoir {
    pub(crate) fn new(capacity: usize) -> Reservoir {
        Reservoir {
            capacity,
            seen: 0,
            samples: Vec::new(),
        }
    }

    /// Offers one query to the reservoir.
    #[inline]
    pub(crate) fn observe(&mut self, query: Rect) {
        if self.capacity == 0 {
            return;
        }
        self.seen += 1;
        let sample = FeedbackSample { query, exact: None };
        if self.samples.len() < self.capacity {
            self.samples.push(sample);
            return;
        }
        // Replace slot j with probability capacity/seen: keep when the
        // deterministic coin lands outside [0, capacity).
        let j = (splitmix64(self.seen) % self.seen) as usize;
        if j < self.capacity {
            self.samples[j] = sample;
        }
    }

    /// The resident sample (at most `capacity` slots).
    pub(crate) fn samples(&self) -> &[FeedbackSample] {
        &self.samples
    }

    /// Records the exact count replayed for slot `idx`, guarded by a
    /// bit-exact query match: the audit computes exact counts outside the
    /// serving lock, so the slot may have rotated to a different query in
    /// the meantime — a mismatch simply drops the write.
    pub(crate) fn record_exact(&mut self, idx: usize, query: &Rect, exact: f64) {
        if let Some(slot) = self.samples.get_mut(idx) {
            if slot.query == *query {
                slot.exact = Some(exact);
            }
        }
    }

    /// Drops every cached exact count (the queries stay resident). Called
    /// when the data era advances: churn makes the cached counts stale but
    /// leaves the sampled workload as representative as before.
    pub(crate) fn invalidate_exact(&mut self) {
        for slot in &mut self.samples {
            slot.exact = None;
        }
    }

    /// Total queries offered since creation or the last reset.
    pub(crate) fn seen(&self) -> u64 {
        self.seen
    }

    /// Empties the reservoir entirely (queries included). Statistics
    /// installs must *not* clear the reservoir — that would discard exactly
    /// the feedback pairs the online refiner needs on its next pass — so no
    /// production path calls this; tests use it to force the empty-feedback
    /// fallback.
    #[cfg(test)]
    pub(crate) fn clear(&mut self) {
        self.seen = 0;
        self.samples.clear();
    }
}

/// The result of one [`crate::SpatialTable::audit_accuracy`] pass: the
/// paper's §5 error metric computed over the reservoir of sampled queries.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct AccuracyReport {
    /// Queries audited (the reservoir's resident sample size).
    pub samples: usize,
    /// Queries observed by the reservoir since it was last cleared.
    pub observed: u64,
    /// Average relative error `Σ|r_i − e_i| / Σ r_i` over the sample
    /// (denominator floored at 1 so all-empty workloads stay finite).
    pub avg_relative_error: f64,
    /// `true` when the error exceeds the configured drift threshold.
    pub drifted: bool,
    /// `true` when the table recommends running `ANALYZE`: the error
    /// drifted, or the statistics are already past their staleness
    /// threshold.
    pub recommend_reanalyze: bool,
}

impl std::fmt::Display for AccuracyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "accuracy: {:.4} avg rel error over {} sampled queries ({} observed){}{}",
            self.avg_relative_error,
            self.samples,
            self.observed,
            if self.drifted { "; DRIFTED" } else { "" },
            if self.recommend_reanalyze {
                "; recommend ANALYZE"
            } else {
                ""
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(i: u64) -> Rect {
        let x = i as f64;
        Rect::new(x, x, x + 1.0, x + 1.0)
    }

    #[test]
    fn fills_then_stays_bounded() {
        let mut r = Reservoir::new(8);
        for i in 0..1_000 {
            r.observe(rect(i));
        }
        assert_eq!(r.samples().len(), 8);
        assert_eq!(r.seen(), 1_000);
    }

    #[test]
    fn is_deterministic() {
        let run = || {
            let mut r = Reservoir::new(16);
            for i in 0..500 {
                r.observe(rect(i));
            }
            r.samples().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn samples_spread_over_the_stream() {
        // An unbiased reservoir over 0..10_000 must not hold only the first
        // (or only the last) observations.
        let mut r = Reservoir::new(64);
        for i in 0..10_000 {
            r.observe(rect(i));
        }
        let late = r
            .samples()
            .iter()
            .filter(|s| s.query.lo.x >= 5_000.0)
            .count();
        assert!(late > 8, "late-stream samples: {late}/64");
        assert!(late < 56, "early-stream samples: {}/64", 64 - late);
    }

    #[test]
    fn zero_capacity_observes_nothing() {
        let mut r = Reservoir::new(0);
        r.observe(rect(1));
        assert!(r.samples().is_empty());
        assert_eq!(r.seen(), 0);
    }

    #[test]
    fn exact_counts_record_and_invalidate_without_losing_queries() {
        let mut r = Reservoir::new(4);
        for i in 0..4 {
            r.observe(rect(i));
        }
        // New observations carry no exact count.
        assert!(r.samples().iter().all(|s| s.exact.is_none()));
        let q = rect(2);
        r.record_exact(2, &q, 7.0);
        assert_eq!(r.samples()[2].exact, Some(7.0));
        // A bit-mismatched query (rotated slot) drops the write.
        r.record_exact(3, &q, 9.0);
        assert_eq!(r.samples()[3].exact, None);
        // Invalidation clears the counts but keeps the sample.
        r.invalidate_exact();
        assert_eq!(r.samples().len(), 4);
        assert!(r.samples().iter().all(|s| s.exact.is_none()));
        assert_eq!(r.samples()[2].query, q);
    }

    #[test]
    fn clear_resets_the_era() {
        let mut r = Reservoir::new(4);
        for i in 0..100 {
            r.observe(rect(i));
        }
        r.clear();
        assert_eq!(r.seen(), 0);
        assert!(r.samples().is_empty());
    }
}
