//! Online accuracy monitoring: a deterministic reservoir of served queries
//! and the audit report comparing their estimates against exact counts.
//!
//! The paper's entire evaluation (§5) reduces to one number — the average
//! relative error `Σ|r_i − e_i| / Σ r_i` over a query workload — but a
//! running system has no offline workload to measure against. The monitor
//! closes that gap: the serving path samples the queries it actually
//! computes (cache misses, where the work already dwarfs the bookkeeping)
//! into a bounded reservoir, and [`crate::SpatialTable::audit_accuracy`]
//! periodically replays the reservoir against exact index counts to publish
//! a live error gauge and a drift signal that recommends re-`ANALYZE`.

use minskew_geom::Rect;

/// SplitMix64: a tiny, high-quality 64-bit mixer. Used to derive the
/// reservoir's replacement decisions deterministically from the number of
/// queries seen, so monitoring never perturbs — and is never perturbed by —
/// any other randomness in the process.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A fixed-capacity uniform reservoir over an unbounded query stream
/// (Vitter's Algorithm R with a deterministic splitmix64 coin).
///
/// After `seen` observations every query ever offered has the same
/// `capacity / seen` probability of being resident, so the reservoir is an
/// unbiased sample of the served workload — exactly what the paper's error
/// metric wants to be computed over.
#[derive(Debug)]
pub(crate) struct Reservoir {
    capacity: usize,
    seen: u64,
    samples: Vec<Rect>,
}

impl Reservoir {
    pub(crate) fn new(capacity: usize) -> Reservoir {
        Reservoir {
            capacity,
            seen: 0,
            samples: Vec::new(),
        }
    }

    /// Offers one query to the reservoir.
    #[inline]
    pub(crate) fn observe(&mut self, query: Rect) {
        if self.capacity == 0 {
            return;
        }
        self.seen += 1;
        if self.samples.len() < self.capacity {
            self.samples.push(query);
            return;
        }
        // Replace slot j with probability capacity/seen: keep when the
        // deterministic coin lands outside [0, capacity).
        let j = (splitmix64(self.seen) % self.seen) as usize;
        if j < self.capacity {
            self.samples[j] = query;
        }
    }

    /// The resident sample (at most `capacity` queries).
    pub(crate) fn samples(&self) -> &[Rect] {
        &self.samples
    }

    /// Total queries offered since creation or the last reset.
    pub(crate) fn seen(&self) -> u64 {
        self.seen
    }

    /// Empties the reservoir (used when new statistics install, so the
    /// sample reflects the current statistics' serving era).
    pub(crate) fn clear(&mut self) {
        self.seen = 0;
        self.samples.clear();
    }
}

/// The result of one [`crate::SpatialTable::audit_accuracy`] pass: the
/// paper's §5 error metric computed over the reservoir of sampled queries.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct AccuracyReport {
    /// Queries audited (the reservoir's resident sample size).
    pub samples: usize,
    /// Queries observed by the reservoir since it was last cleared.
    pub observed: u64,
    /// Average relative error `Σ|r_i − e_i| / Σ r_i` over the sample
    /// (denominator floored at 1 so all-empty workloads stay finite).
    pub avg_relative_error: f64,
    /// `true` when the error exceeds the configured drift threshold.
    pub drifted: bool,
    /// `true` when the table recommends running `ANALYZE`: the error
    /// drifted, or the statistics are already past their staleness
    /// threshold.
    pub recommend_reanalyze: bool,
}

impl std::fmt::Display for AccuracyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "accuracy: {:.4} avg rel error over {} sampled queries ({} observed){}{}",
            self.avg_relative_error,
            self.samples,
            self.observed,
            if self.drifted { "; DRIFTED" } else { "" },
            if self.recommend_reanalyze {
                "; recommend ANALYZE"
            } else {
                ""
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(i: u64) -> Rect {
        let x = i as f64;
        Rect::new(x, x, x + 1.0, x + 1.0)
    }

    #[test]
    fn fills_then_stays_bounded() {
        let mut r = Reservoir::new(8);
        for i in 0..1_000 {
            r.observe(rect(i));
        }
        assert_eq!(r.samples().len(), 8);
        assert_eq!(r.seen(), 1_000);
    }

    #[test]
    fn is_deterministic() {
        let run = || {
            let mut r = Reservoir::new(16);
            for i in 0..500 {
                r.observe(rect(i));
            }
            r.samples().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn samples_spread_over_the_stream() {
        // An unbiased reservoir over 0..10_000 must not hold only the first
        // (or only the last) observations.
        let mut r = Reservoir::new(64);
        for i in 0..10_000 {
            r.observe(rect(i));
        }
        let late = r.samples().iter().filter(|s| s.lo.x >= 5_000.0).count();
        assert!(late > 8, "late-stream samples: {late}/64");
        assert!(late < 56, "early-stream samples: {}/64", 64 - late);
    }

    #[test]
    fn zero_capacity_observes_nothing() {
        let mut r = Reservoir::new(0);
        r.observe(rect(1));
        assert!(r.samples().is_empty());
        assert_eq!(r.seen(), 0);
    }

    #[test]
    fn clear_resets_the_era() {
        let mut r = Reservoir::new(4);
        for i in 0..100 {
            r.observe(rect(i));
        }
        r.clear();
        assert_eq!(r.seen(), 0);
        assert!(r.samples().is_empty());
    }
}
