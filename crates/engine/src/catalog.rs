//! A catalog of named [`SpatialTable`]s with create/drop/list, designed for
//! concurrent serving: writers lock one table, readers go through each
//! table's lock-free publication cell.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use minskew_core::BuildError;

use crate::publish::{SnapshotCell, TableSnapshot};
use crate::reader::SpatialReader;
use crate::table::{SpatialTable, TableOptions};

/// Maximum table-name length accepted by [`SpatialCatalog::create`].
pub const MAX_TABLE_NAME: usize = 64;

/// Error from catalog operations.
#[derive(Debug)]
pub enum CatalogError {
    /// The name is empty, too long, or contains characters outside
    /// `[A-Za-z0-9_-]` (names must be single protocol tokens).
    InvalidName(String),
    /// A table with this name already exists.
    DuplicateTable(String),
    /// No table with this name exists.
    UnknownTable(String),
    /// The table options were invalid.
    Build(BuildError),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::InvalidName(name) => write!(
                f,
                "invalid table name {name:?} (1..={MAX_TABLE_NAME} chars from [A-Za-z0-9_-])"
            ),
            CatalogError::DuplicateTable(name) => write!(f, "table {name:?} already exists"),
            CatalogError::UnknownTable(name) => write!(f, "unknown table {name:?}"),
            CatalogError::Build(e) => write!(f, "invalid table options: {e}"),
        }
    }
}

impl std::error::Error for CatalogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CatalogError::Build(e) => Some(e),
            _ => None,
        }
    }
}

/// One named table in a [`SpatialCatalog`].
///
/// Mutations (`INSERT`/`DELETE`/`ANALYZE`/snapshot loads) go through
/// [`CatalogEntry::table`], which locks the table. Estimates should go
/// through [`CatalogEntry::reader`]: the handle is constructed from the
/// table's publication cell **without touching the table lock**, so reads
/// proceed even while a writer holds the table through a long `ANALYZE`.
#[derive(Debug)]
pub struct CatalogEntry {
    name: String,
    /// The table's publication cell, cloned out at creation so readers can
    /// be minted while the table is locked.
    cell: Arc<SnapshotCell<TableSnapshot>>,
    cache_capacity: usize,
    table: Mutex<SpatialTable>,
}

impl CatalogEntry {
    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Locks the table for mutation (or locked inspection). Poisoning is
    /// recovered: the table's internal invariants hold after any panic
    /// because every mutation republishes at its end.
    pub fn table(&self) -> MutexGuard<'_, SpatialTable> {
        self.table.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A lock-free reader over this table's published snapshots; see
    /// [`SpatialTable::reader`]. Does **not** take the table lock.
    pub fn reader(&self) -> SpatialReader {
        SpatialReader::new(self.cell.clone(), self.cache_capacity)
    }
}

/// A concurrent catalog of named spatial tables.
///
/// The catalog map itself is guarded by one mutex held only for O(log n)
/// lookups — never across a table operation: entries are `Arc`-shared, so
/// `get` hands the entry out and drops the catalog lock immediately.
#[derive(Debug, Default)]
pub struct SpatialCatalog {
    tables: Mutex<BTreeMap<String, Arc<CatalogEntry>>>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_TABLE_NAME
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

impl SpatialCatalog {
    /// Creates an empty catalog.
    pub fn new() -> SpatialCatalog {
        SpatialCatalog::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Arc<CatalogEntry>>> {
        self.tables.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Creates a new empty table under `name`.
    pub fn create(
        &self,
        name: &str,
        options: TableOptions,
    ) -> Result<Arc<CatalogEntry>, CatalogError> {
        if !valid_name(name) {
            return Err(CatalogError::InvalidName(name.to_string()));
        }
        let table = SpatialTable::try_new(options).map_err(CatalogError::Build)?;
        let entry = Arc::new(CatalogEntry {
            name: name.to_string(),
            cell: table.snapshot_cell(),
            cache_capacity: if options.query_cache {
                options.query_cache_capacity
            } else {
                0
            },
            table: Mutex::new(table),
        });
        let mut tables = self.lock();
        if tables.contains_key(name) {
            return Err(CatalogError::DuplicateTable(name.to_string()));
        }
        tables.insert(name.to_string(), entry.clone());
        Ok(entry)
    }

    /// Removes the table named `name` from the catalog. Existing `Arc`
    /// holders (open connections, readers) keep working against the
    /// detached table; new lookups no longer find it.
    pub fn drop_table(&self, name: &str) -> Result<(), CatalogError> {
        match self.lock().remove(name) {
            Some(_) => Ok(()),
            None => Err(CatalogError::UnknownTable(name.to_string())),
        }
    }

    /// Looks up a table by name.
    pub fn get(&self, name: &str) -> Option<Arc<CatalogEntry>> {
        self.lock().get(name).cloned()
    }

    /// All table names, sorted.
    pub fn list(&self) -> Vec<String> {
        self.lock().keys().cloned().collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when the catalog holds no tables.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minskew_geom::Rect;

    #[test]
    fn create_list_drop_round_trip() {
        let catalog = SpatialCatalog::new();
        catalog
            .create("roads", TableOptions::default())
            .expect("create");
        catalog
            .create("parcels", TableOptions::default())
            .expect("create");
        assert_eq!(catalog.list(), ["parcels", "roads"]);
        assert!(matches!(
            catalog.create("roads", TableOptions::default()),
            Err(CatalogError::DuplicateTable(_))
        ));
        catalog.drop_table("roads").expect("drop");
        assert_eq!(catalog.list(), ["parcels"]);
        assert!(matches!(
            catalog.drop_table("roads"),
            Err(CatalogError::UnknownTable(_))
        ));
        assert!(catalog.get("roads").is_none());
        assert_eq!(catalog.len(), 1);
    }

    #[test]
    fn rejects_bad_names() {
        let catalog = SpatialCatalog::new();
        for bad in ["", "has space", "semi;colon", "x".repeat(65).as_str()] {
            assert!(
                matches!(
                    catalog.create(bad, TableOptions::default()),
                    Err(CatalogError::InvalidName(_))
                ),
                "{bad:?} must be rejected"
            );
        }
        catalog
            .create("ok_name-42", TableOptions::default())
            .expect("valid");
    }

    #[test]
    fn reader_minted_while_table_is_locked_serves_published_state() {
        let catalog = SpatialCatalog::new();
        let entry = catalog
            .create("t", TableOptions::default())
            .expect("create");
        {
            let mut table = entry.table();
            for i in 0..100 {
                let x = (i % 10) as f64 * 10.0;
                let y = (i / 10) as f64 * 10.0;
                table.insert(Rect::new(x, y, x + 5.0, y + 5.0));
            }
            table.analyze();
            // Table still locked: a reader minted now must serve the
            // published statistics without blocking.
            let mut reader = entry.reader();
            let q = Rect::new(0.0, 0.0, 50.0, 50.0);
            let expected = table.estimate(&q);
            assert_eq!(expected.to_bits(), reader.estimate(&q).to_bits());
        }
    }
}
