//! Access-path selection: the part of the optimizer that consumes
//! selectivity estimates.

/// Plan shapes the engine can execute for a range query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Plan {
    /// Walk every live row and test intersection. Cost is linear in the
    /// table but each tuple is touched sequentially (cheap per tuple).
    SeqScan,
    /// Descend the R\*-tree. Touches roughly the matching subtrees only,
    /// but each node access is "random" (expensive per tuple in a disk
    /// system; still a real constant-factor difference in memory).
    IndexScan,
}

impl Plan {
    /// Returns `true` for [`Plan::IndexScan`].
    pub fn is_index_scan(self) -> bool {
        matches!(self, Plan::IndexScan)
    }
}

/// Tunable plan-cost constants, in abstract cost units (the engine only
/// ever compares costs, so units cancel).
///
/// Defaults follow the classic DBMS convention that a random access costs
/// several times a sequential one (e.g. PostgreSQL's
/// `random_page_cost = 4 × seq_page_cost`): with the defaults the index
/// wins below ~25 % estimated selectivity.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Cost of touching one tuple during a sequential scan.
    pub seq_tuple_cost: f64,
    /// Cost of fetching one matching tuple through the index.
    pub index_tuple_cost: f64,
    /// Flat cost of descending the index (root-to-leaf paths, cold caches).
    pub index_setup_cost: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            seq_tuple_cost: 1.0,
            index_tuple_cost: 4.0,
            index_setup_cost: 50.0,
        }
    }
}

impl CostModel {
    /// Cost of a sequential scan over `n` rows.
    pub fn seq_scan_cost(&self, n: usize) -> f64 {
        n as f64 * self.seq_tuple_cost
    }

    /// Cost of an index scan expected to fetch `est_rows` rows.
    pub fn index_scan_cost(&self, est_rows: f64) -> f64 {
        self.index_setup_cost + est_rows * self.index_tuple_cost
    }

    /// Picks the cheaper plan for a table of `n` rows and an estimated
    /// result size of `est_rows`.
    pub fn choose(&self, n: usize, est_rows: f64) -> Plan {
        if self.index_scan_cost(est_rows) <= self.seq_scan_cost(n) {
            Plan::IndexScan
        } else {
            Plan::SeqScan
        }
    }
}

/// The optimizer's account of one query: what it estimated, what it chose,
/// and — when produced by `execute_explain` — what actually happened.
#[derive(Debug, Clone, PartialEq)]
pub struct Explain {
    /// Chosen access path.
    pub plan: Plan,
    /// Estimated result size (`|Q|`) from the statistics histogram, or the
    /// uniformity fallback when the table has never been analyzed.
    pub estimated_rows: f64,
    /// Estimated cost of the chosen plan.
    pub estimated_cost: f64,
    /// Estimated cost of the rejected alternative.
    pub rejected_cost: f64,
    /// Actual result size; `None` when the query was only planned.
    pub actual_rows: Option<usize>,
    /// `true` if the statistics were missing or stale at plan time.
    pub stats_stale: bool,
}

impl std::fmt::Display for Explain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} (cost {:.0} vs {:.0}, est rows {:.1}",
            self.plan, self.estimated_cost, self.rejected_cost, self.estimated_rows
        )?;
        if let Some(actual) = self.actual_rows {
            write!(f, ", actual {actual}")?;
        }
        if self.stats_stale {
            write!(f, ", STATS STALE")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_prefer_index_for_selective_queries() {
        let m = CostModel::default();
        let n = 10_000;
        assert_eq!(m.choose(n, 10.0), Plan::IndexScan);
        assert_eq!(m.choose(n, n as f64), Plan::SeqScan);
        // Crossover near (n - setup) / index_tuple_cost.
        let crossover = (m.seq_scan_cost(n) - m.index_setup_cost) / m.index_tuple_cost;
        assert_eq!(m.choose(n, crossover - 1.0), Plan::IndexScan);
        assert_eq!(m.choose(n, crossover + 1.0), Plan::SeqScan);
    }

    #[test]
    fn tiny_tables_scan() {
        // Setup cost dominates: a 10-row table never benefits from the
        // index under the defaults.
        let m = CostModel::default();
        assert_eq!(m.choose(10, 0.0), Plan::SeqScan);
    }

    #[test]
    fn explain_display() {
        let e = Explain {
            plan: Plan::IndexScan,
            estimated_rows: 12.5,
            estimated_cost: 100.0,
            rejected_cost: 10_000.0,
            actual_rows: Some(13),
            stats_stale: false,
        };
        let s = e.to_string();
        assert!(s.contains("IndexScan") && s.contains("actual 13"));
        assert!(!s.contains("STALE"));
    }
}
