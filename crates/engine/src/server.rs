//! A zero-dependency TCP front-end serving a [`SpatialCatalog`] over a
//! line-based protocol (`std::net` only — no external crates).
//!
//! # Protocol
//!
//! Requests and responses are single UTF-8 lines terminated by `\n`.
//! Responses are `OK <payload>` or `ERR <code> <message>`, where `<code>`
//! is the CLI's exit-code taxonomy (DESIGN.md §7): `2` usage, `3` I/O,
//! `4` malformed data, `5` corrupt statistics, `6` build failure.
//!
//! | Request | Response |
//! |---|---|
//! | `PING` | `OK pong` |
//! | `TABLES` | `OK <n> <name>...` |
//! | `CREATE <t> [buckets=N] [shards=S] [technique=T]` | `OK created <t>` |
//! | `DROP <t>` | `OK dropped <t>` |
//! | `INSERT <t> <x1> <y1> <x2> <y2>` | `OK <rowid>` |
//! | `DELETE <t> <rowid>` | `OK deleted <rowid>` |
//! | `ANALYZE <t>` | `OK analyzed <t> buckets=<B> fallback=<F> shards=<S>` |
//! | `ESTIMATE <t> <x1> <y1> <x2> <y2>` | `OK <estimate>` |
//! | `BATCH <t> <n> <x1> <y1> <x2> <y2> ...` | `OK <e1> <e2> ...` |
//! | `STATS [<t>]` | `OK {...}` (single-line JSON) |
//! | `MAINTAIN <t>` | `OK maintained <t> mode=<m> accuracy: ...; action: ...` |
//! | `MAINTAIN <t> MODE off\|reanalyze\|refine` | `OK maintenance <t> mode=<m>` |
//! | `SNAPSHOT <t> SAVE\|LOAD <path>` | `OK saved/loaded ...` |
//! | `SHUTDOWN` | `OK bye` (server stops accepting and drains) |
//!
//! Estimates are formatted with Rust's shortest-round-trip `f64` display,
//! so `parse::<f64>()` on the client recovers the exact bits — the wire
//! preserves the bitwise differential contract.
//!
//! Malformed input yields a typed `ERR` reply and the connection keeps
//! serving; the only lines that close a connection are transport-level
//! (EOF, an over-long line, an unwritable socket). A request can never
//! panic the server: handlers touch only total functions and typed errors.
//!
//! # Concurrency
//!
//! Thread per connection. `ESTIMATE`/`BATCH` go through per-connection
//! [`SpatialReader`]s — the lock-free snapshot path — so estimate traffic
//! on one table proceeds concurrently across connections even while a
//! writer runs `ANALYZE`. Mutating verbs lock only their target table.
//!
//! Per-connection and per-verb counters, request latency, and per-shard
//! routing counters flow into the server's [`Registry`]
//! ([`ServerHandle::metrics`]).

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use minskew_geom::Rect;
use minskew_obs::{Registry, Stopwatch};

use crate::catalog::{CatalogEntry, CatalogError, SpatialCatalog};
use crate::persist::SnapshotIoError;
use crate::reader::SpatialReader;
use crate::table::{MaintenanceMode, RowId, StatsTechnique, TableOptions};

/// Hard cap on one request line (transport protection; a longer line
/// closes the connection after a typed error).
const MAX_LINE: usize = 1 << 20;

/// Configuration for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; port `0` picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Options for tables created via the `CREATE` verb (bucket budget,
    /// shard count, and technique are overridable per request).
    pub table_options: TableOptions,
    /// Maximum query count accepted by one `BATCH` request.
    pub max_batch: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: String::from("127.0.0.1:0"),
            table_options: TableOptions::default(),
            max_batch: 4096,
        }
    }
}

/// Shared server context.
#[derive(Debug)]
struct ServerCtx {
    catalog: Arc<SpatialCatalog>,
    options: ServeOptions,
    registry: Registry,
    shutdown: AtomicBool,
    active: AtomicU64,
}

impl ServerCtx {
    fn bump(&self, name: &str) {
        if minskew_obs::enabled() {
            self.registry.counter(name).inc();
        }
    }
}

/// Handle to a running server. Dropping the handle does **not** stop the
/// server; call [`ServerHandle::shutdown`] (or send the `SHUTDOWN` verb).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    ctx: Arc<ServerCtx>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port `0` requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the accept loop to stop. Existing connections drain (each
    /// notices the flag within its read-poll interval).
    pub fn request_shutdown(&self) {
        self.ctx.shutdown.store(true, Ordering::SeqCst);
    }

    /// `true` once shutdown has been requested (by this handle or by a
    /// `SHUTDOWN` request over the wire).
    pub fn shutdown_requested(&self) -> bool {
        self.ctx.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until the accept loop and every connection thread exit.
    pub fn join(mut self) -> minskew_obs::RegistrySnapshot {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.ctx.registry.snapshot()
    }

    /// Requests shutdown and waits for a clean drain; returns the final
    /// metrics snapshot.
    pub fn shutdown(self) -> minskew_obs::RegistrySnapshot {
        self.request_shutdown();
        self.join()
    }

    /// A point-in-time snapshot of the server's metrics registry
    /// (`serve.*` counters, gauges, latency histograms).
    pub fn metrics(&self) -> minskew_obs::RegistrySnapshot {
        self.ctx.registry.snapshot()
    }
}

/// Starts serving `catalog` per `options`; returns once the listener is
/// bound. See the module docs for the protocol.
pub fn serve(catalog: Arc<SpatialCatalog>, options: ServeOptions) -> std::io::Result<ServerHandle> {
    let addrs: Vec<SocketAddr> = options.addr.to_socket_addrs()?.collect();
    let listener = TcpListener::bind(&addrs[..])?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let ctx = Arc::new(ServerCtx {
        catalog,
        options,
        registry: Registry::new(),
        shutdown: AtomicBool::new(false),
        active: AtomicU64::new(0),
    });
    let accept_ctx = Arc::clone(&ctx);
    let accept = std::thread::spawn(move || accept_loop(listener, accept_ctx));
    Ok(ServerHandle {
        addr,
        ctx,
        accept: Some(accept),
    })
}

fn accept_loop(listener: TcpListener, ctx: Arc<ServerCtx>) {
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !ctx.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                ctx.bump("serve.connections");
                let conn_ctx = Arc::clone(&ctx);
                conns.push(std::thread::spawn(move || {
                    handle_connection(stream, conn_ctx)
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                // Reap finished connection threads opportunistically.
                conns.retain(|c| !c.is_finished());
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    drop(listener);
    for conn in conns {
        let _ = conn.join();
    }
}

/// Per-connection state: cached lock-free readers (one per table touched)
/// and their resolved per-shard routing counters.
struct ConnState {
    readers: std::collections::HashMap<String, TableReader>,
}

struct TableReader {
    reader: SpatialReader,
    /// `serve.table.<t>.shard.<s>.routed`, resolved lazily per shard.
    shard_counters: Vec<Arc<minskew_obs::Counter>>,
}

fn handle_connection(stream: TcpStream, ctx: Arc<ServerCtx>) {
    let _ = stream.set_nodelay(true);
    // Poll the shutdown flag between reads so drains are prompt.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    ctx.active.fetch_add(1, Ordering::SeqCst);
    if minskew_obs::enabled() {
        ctx.registry
            .gauge("serve.active_connections")
            .set(ctx.active.load(Ordering::SeqCst) as f64);
    }
    serve_requests(stream, &ctx);
    let now = ctx.active.fetch_sub(1, Ordering::SeqCst) - 1;
    if minskew_obs::enabled() {
        ctx.registry
            .gauge("serve.active_connections")
            .set(now as f64);
    }
}

fn serve_requests(mut stream: TcpStream, ctx: &Arc<ServerCtx>) {
    let mut conn = ConnState {
        readers: std::collections::HashMap::new(),
    };
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 4096];
    loop {
        // Serve every complete line already buffered.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line_bytes);
            let reply = handle_request(ctx, &mut conn, line.trim_end_matches(['\n', '\r']));
            let quit = matches!(reply, Reply::Quit(_));
            let text = match reply {
                Reply::Line(s) | Reply::Quit(s) => s,
            };
            if stream.write_all(text.as_bytes()).is_err()
                || stream.write_all(b"\n").is_err()
                || stream.flush().is_err()
            {
                return;
            }
            if quit {
                return;
            }
        }
        if buf.len() > MAX_LINE {
            // Transport protection: an unbounded line would buffer forever.
            let _ = stream.write_all(b"ERR 2 usage: request line exceeds 1 MiB\n");
            return;
        }
        if ctx.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

enum Reply {
    Line(String),
    /// Write the line, then stop the whole server (the `SHUTDOWN` verb).
    Quit(String),
}

fn ok(payload: impl std::fmt::Display) -> Reply {
    Reply::Line(format!("OK {payload}"))
}

fn err(code: u8, message: impl std::fmt::Display) -> Reply {
    Reply::Line(format!("ERR {code} {message}"))
}

fn catalog_err(e: CatalogError) -> Reply {
    match e {
        CatalogError::Build(inner) => err(6, format!("build: {inner}")),
        other => err(2, format!("usage: {other}")),
    }
}

fn snapshot_err(e: SnapshotIoError) -> Reply {
    match e {
        SnapshotIoError::NoStats => err(2, format!("usage: {e}")),
        SnapshotIoError::Io(_) | SnapshotIoError::Write(_) => err(3, format!("io: {e}")),
        SnapshotIoError::Corrupt(_) => err(5, format!("corrupt: {e}")),
    }
}

/// Dispatches one request line. Total: every input maps to exactly one
/// reply, and nothing here can panic on malformed input.
fn handle_request(ctx: &Arc<ServerCtx>, conn: &mut ConnState, line: &str) -> Reply {
    let mut clock = Stopwatch::start();
    ctx.bump("serve.requests");
    let reply = dispatch(ctx, conn, line);
    if minskew_obs::enabled() {
        ctx.registry
            .histogram("serve.request_ns")
            .record(clock.lap());
        if matches!(&reply, Reply::Line(s) if s.starts_with("ERR")) {
            ctx.bump("serve.errors");
        }
    }
    reply
}

fn dispatch(ctx: &Arc<ServerCtx>, conn: &mut ConnState, line: &str) -> Reply {
    let mut tokens = line.split_ascii_whitespace();
    let Some(verb) = tokens.next() else {
        return err(2, "usage: empty request");
    };
    let args: Vec<&str> = tokens.collect();
    let verb_upper = verb.to_ascii_uppercase();
    if minskew_obs::enabled() {
        ctx.bump(&format!(
            "serve.verb.{}",
            minskew_obs::name_component(&verb_upper)
        ));
    }
    match verb_upper.as_str() {
        "PING" => ok("pong"),
        "TABLES" => {
            let names = ctx.catalog.list();
            let mut payload = names.len().to_string();
            for name in names {
                payload.push(' ');
                payload.push_str(&name);
            }
            ok(payload)
        }
        "CREATE" => cmd_create(ctx, &args),
        "DROP" => match args[..] {
            [name] => match ctx.catalog.drop_table(name) {
                Ok(()) => ok(format_args!("dropped {name}")),
                Err(e) => catalog_err(e),
            },
            _ => err(2, "usage: DROP <table>"),
        },
        "INSERT" => cmd_insert(ctx, &args),
        "DELETE" => cmd_delete(ctx, &args),
        "ANALYZE" => cmd_analyze(ctx, &args),
        "ESTIMATE" => cmd_estimate(ctx, conn, &args),
        "BATCH" => cmd_batch(ctx, conn, &args),
        "STATS" => cmd_stats(ctx, &args),
        "MAINTAIN" => cmd_maintain(ctx, &args),
        "SNAPSHOT" => cmd_snapshot(ctx, &args),
        "SHUTDOWN" => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            Reply::Quit(String::from("OK bye"))
        }
        other => err(2, format_args!("usage: unknown verb {other:?}")),
    }
}

fn cmd_create(ctx: &Arc<ServerCtx>, args: &[&str]) -> Reply {
    let [name, opts @ ..] = args else {
        return err(
            2,
            "usage: CREATE <table> [buckets=N] [shards=S] [technique=T]",
        );
    };
    let mut options = ctx.options.table_options;
    for opt in opts {
        let Some((key, value)) = opt.split_once('=') else {
            return err(
                2,
                format_args!("usage: bad option {opt:?} (want key=value)"),
            );
        };
        match key {
            "buckets" => match value.parse::<usize>() {
                Ok(v) => options.analyze.buckets = v,
                Err(_) => return err(2, format_args!("usage: bad buckets {value:?}")),
            },
            "shards" => match value.parse::<usize>() {
                Ok(v) => options.shards = v,
                Err(_) => return err(2, format_args!("usage: bad shards {value:?}")),
            },
            "technique" => {
                options.analyze.technique = match value {
                    "min-skew" | "minskew" => StatsTechnique::MinSkew,
                    "equi-area" => StatsTechnique::EquiArea,
                    "equi-count" => StatsTechnique::EquiCount,
                    "uniform" => StatsTechnique::Uniform,
                    _ => return err(2, format_args!("usage: unknown technique {value:?}")),
                }
            }
            _ => return err(2, format_args!("usage: unknown option {key:?}")),
        }
    }
    match ctx.catalog.create(name, options) {
        Ok(_) => ok(format_args!("created {name}")),
        Err(e) => catalog_err(e),
    }
}

fn lookup(ctx: &Arc<ServerCtx>, name: &str) -> Result<Arc<CatalogEntry>, Reply> {
    ctx.catalog
        .get(name)
        .ok_or_else(|| err(2, format_args!("usage: unknown table {name:?}")))
}

/// Parses four tokens into a rectangle. `code` distinguishes query usage
/// errors (2) from malformed data (4), per the exit-code taxonomy.
fn parse_rect(tokens: &[&str], code: u8) -> Result<Rect, Reply> {
    let [x1, y1, x2, y2] = tokens else {
        return Err(err(code, "expected <x1> <y1> <x2> <y2>"));
    };
    let parse = |t: &str| -> Result<f64, Reply> {
        match t.parse::<f64>() {
            Ok(v) => Ok(v),
            Err(_) => Err(err(code, format!("bad coordinate {t:?}"))),
        }
    };
    let rect = Rect::try_new(parse(x1)?, parse(y1)?, parse(x2)?, parse(y2)?)
        .map_err(|e| err(code, e.to_string()))?;
    Ok(rect)
}

fn cmd_insert(ctx: &Arc<ServerCtx>, args: &[&str]) -> Reply {
    let [name, coords @ ..] = args else {
        return err(2, "usage: INSERT <table> <x1> <y1> <x2> <y2>");
    };
    let rect = match parse_rect(coords, 4) {
        Ok(r) => r,
        Err(reply) => return reply,
    };
    match lookup(ctx, name) {
        Ok(entry) => {
            let id = entry.table().insert(rect);
            ok(id.raw())
        }
        Err(reply) => reply,
    }
}

fn cmd_delete(ctx: &Arc<ServerCtx>, args: &[&str]) -> Reply {
    let [name, id] = args else {
        return err(2, "usage: DELETE <table> <rowid>");
    };
    let Ok(row) = id.parse::<u64>() else {
        return err(2, format_args!("usage: bad rowid {id:?}"));
    };
    match lookup(ctx, name) {
        Ok(entry) => {
            if entry.table().delete(RowId::from_raw(row)) {
                ok(format_args!("deleted {row}"))
            } else {
                err(2, format_args!("usage: unknown rowid {row}"))
            }
        }
        Err(reply) => reply,
    }
}

fn cmd_analyze(ctx: &Arc<ServerCtx>, args: &[&str]) -> Reply {
    let [name] = args else {
        return err(2, "usage: ANALYZE <table>");
    };
    match lookup(ctx, name) {
        Ok(entry) => {
            let mut table = entry.table();
            table.analyze();
            let diag = table.stats_diagnostics();
            let shards = table.current_snapshot().num_shards();
            ok(format_args!(
                "analyzed {name} buckets={} fallback={} shards={shards}",
                diag.achieved_buckets, diag.fallback
            ))
        }
        Err(reply) => reply,
    }
}

/// Per-connection reader for `name`, minted lock-free on first use.
fn conn_reader<'a>(
    ctx: &Arc<ServerCtx>,
    conn: &'a mut ConnState,
    name: &str,
) -> Result<&'a mut TableReader, Reply> {
    if !conn.readers.contains_key(name) {
        let entry = lookup(ctx, name)?;
        conn.readers.insert(
            name.to_string(),
            TableReader {
                reader: entry.reader(),
                shard_counters: Vec::new(),
            },
        );
    }
    Ok(conn
        .readers
        .get_mut(name)
        .expect("reader inserted just above"))
}

/// Counts routed shards into `serve.table.<t>.shard.<s>.routed`.
fn note_routing(ctx: &Arc<ServerCtx>, name: &str, tr: &mut TableReader) {
    if !minskew_obs::enabled() {
        return;
    }
    let Some(routed) = tr.reader.routed_shards() else {
        return;
    };
    if tr.shard_counters.len() < routed.len() {
        let table = minskew_obs::name_component(name);
        for s in tr.shard_counters.len()..routed.len() {
            tr.shard_counters.push(
                ctx.registry
                    .counter(&format!("serve.table.{table}.shard.{s}.routed")),
            );
        }
    }
    for (s, &hit) in routed.iter().enumerate() {
        if hit {
            tr.shard_counters[s].inc();
        }
    }
}

/// Adds the per-shard routed totals of the most recent batch into
/// `serve.table.<t>.shard.<s>.routed`.
fn note_batch_routing(ctx: &Arc<ServerCtx>, name: &str, tr: &mut TableReader) {
    if !minskew_obs::enabled() {
        return;
    }
    let routed = tr.reader.batch_shard_routing();
    if routed.is_empty() {
        return;
    }
    if tr.shard_counters.len() < routed.len() {
        let table = minskew_obs::name_component(name);
        for s in tr.shard_counters.len()..routed.len() {
            tr.shard_counters.push(
                ctx.registry
                    .counter(&format!("serve.table.{table}.shard.{s}.routed")),
            );
        }
    }
    for (s, &hits) in routed.iter().enumerate() {
        tr.shard_counters[s].add(hits);
    }
}

fn cmd_estimate(ctx: &Arc<ServerCtx>, conn: &mut ConnState, args: &[&str]) -> Reply {
    let [name, coords @ ..] = args else {
        return err(2, "usage: ESTIMATE <table> <x1> <y1> <x2> <y2>");
    };
    let rect = match parse_rect(coords, 2) {
        Ok(r) => r,
        Err(reply) => return reply,
    };
    let tr = match conn_reader(ctx, conn, name) {
        Ok(tr) => tr,
        Err(reply) => return reply,
    };
    match tr.reader.try_estimate(&rect) {
        Ok(value) => {
            note_routing(ctx, name, tr);
            ctx.bump("serve.estimates");
            ok(value)
        }
        Err(e) => err(2, format_args!("usage: {e}")),
    }
}

fn cmd_batch(ctx: &Arc<ServerCtx>, conn: &mut ConnState, args: &[&str]) -> Reply {
    let [name, count, coords @ ..] = args else {
        return err(2, "usage: BATCH <table> <n> <x1> <y1> <x2> <y2> ...");
    };
    let Ok(n) = count.parse::<usize>() else {
        return err(2, format_args!("usage: bad count {count:?}"));
    };
    if n > ctx.options.max_batch {
        return err(
            2,
            format_args!(
                "usage: batch of {n} exceeds the limit of {}",
                ctx.options.max_batch
            ),
        );
    }
    if coords.len() != 4 * n {
        return err(
            2,
            format_args!(
                "usage: expected {} coordinates, got {}",
                4 * n,
                coords.len()
            ),
        );
    }
    let mut queries = Vec::with_capacity(n);
    for quad in coords.chunks_exact(4) {
        match parse_rect(quad, 2) {
            Ok(rect) => queries.push(rect),
            Err(reply) => return reply,
        }
    }
    let tr = match conn_reader(ctx, conn, name) {
        Ok(tr) => tr,
        Err(reply) => return reply,
    };
    // One Morton-ordered pass over one snapshot; replies come back in
    // request order and are bit-identical to a per-query loop.
    let values = match tr.reader.try_estimate_batch(&queries) {
        Ok(values) => values,
        Err(e) => return err(2, format_args!("usage: {e}")),
    };
    note_batch_routing(ctx, name, tr);
    let mut payload = String::with_capacity(values.len() * 8);
    for (i, value) in values.iter().enumerate() {
        if i > 0 {
            payload.push(' ');
        }
        payload.push_str(&value.to_string());
    }
    if minskew_obs::enabled() {
        ctx.registry
            .counter("serve.estimates")
            .add(queries.len() as u64);
    }
    ok(payload)
}

fn cmd_stats(ctx: &Arc<ServerCtx>, args: &[&str]) -> Reply {
    match args {
        [] => ok(format_args!(
            "{{\"tables\":{},\"active_connections\":{}}}",
            ctx.catalog.len(),
            ctx.active.load(Ordering::SeqCst)
        )),
        [name] => match lookup(ctx, name) {
            Ok(entry) => {
                let table = entry.table();
                let snapshot = table.current_snapshot();
                let diag = table.stats_diagnostics();
                let buckets = snapshot.stats().map_or(0, |s| s.histogram().num_buckets());
                let staleness = table
                    .stats_staleness()
                    .map_or_else(|| String::from("null"), |s| format!("{s:.6}"));
                ok(format_args!(
                    "{{\"table\":\"{name}\",\"rows\":{},\"buckets\":{buckets},\"shards\":{},\
                     \"generation\":{},\"fallback\":\"{}\",\"maintenance\":\"{}\",\
                     \"staleness\":{staleness}}}",
                    table.len(),
                    snapshot.num_shards(),
                    snapshot.generation(),
                    diag.fallback,
                    table.maintenance_mode(),
                ))
            }
            Err(reply) => reply,
        },
        _ => err(2, "usage: STATS [<table>]"),
    }
}

fn cmd_maintain(ctx: &Arc<ServerCtx>, args: &[&str]) -> Reply {
    match args {
        [name] => match lookup(ctx, name) {
            Ok(entry) => {
                let mut table = entry.table();
                let report = table.maintain();
                ok(format_args!(
                    "maintained {name} mode={} {report}",
                    table.maintenance_mode()
                ))
            }
            Err(reply) => reply,
        },
        [name, mode_kw, mode] if mode_kw.eq_ignore_ascii_case("MODE") => {
            let parsed: MaintenanceMode = match mode.parse() {
                Ok(m) => m,
                Err(e) => return err(2, format_args!("usage: {e}")),
            };
            match lookup(ctx, name) {
                Ok(entry) => {
                    entry.table().set_maintenance_mode(parsed);
                    ok(format_args!("maintenance {name} mode={parsed}"))
                }
                Err(reply) => reply,
            }
        }
        _ => err(2, "usage: MAINTAIN <table> [MODE off|reanalyze|refine]"),
    }
}

fn cmd_snapshot(ctx: &Arc<ServerCtx>, args: &[&str]) -> Reply {
    let [name, action, path] = args else {
        return err(2, "usage: SNAPSHOT <table> SAVE|LOAD <path>");
    };
    let entry = match lookup(ctx, name) {
        Ok(entry) => entry,
        Err(reply) => return reply,
    };
    match action.to_ascii_uppercase().as_str() {
        "SAVE" => match entry.table().save_snapshot(std::path::Path::new(path)) {
            Ok(info) => ok(format_args!("saved {name} buckets={}", info.buckets)),
            Err(e) => snapshot_err(e),
        },
        "LOAD" => match entry.table().try_load_snapshot(std::path::Path::new(path)) {
            Ok(info) => ok(format_args!("loaded {name} buckets={}", info.buckets)),
            Err(e) => snapshot_err(e),
        },
        other => err(2, format_args!("usage: unknown snapshot action {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rect_accepts_finite_and_rejects_everything_else() {
        assert!(parse_rect(&["0", "0", "1.5", "2"], 2).is_ok());
        for bad in [
            ["nan", "0", "1", "1"],
            ["inf", "0", "1", "1"],
            ["-inf", "0", "1", "1"],
            ["x", "0", "1", "1"],
            ["", "0", "1", "1"],
        ] {
            assert!(parse_rect(&bad, 2).is_err(), "{bad:?} must be rejected");
        }
        assert!(parse_rect(&["0", "0", "1"], 2).is_err(), "arity");
    }

    #[test]
    fn dispatch_maps_errors_to_the_exit_code_taxonomy() {
        let ctx = Arc::new(ServerCtx {
            catalog: Arc::new(SpatialCatalog::new()),
            options: ServeOptions::default(),
            registry: Registry::new(),
            shutdown: AtomicBool::new(false),
            active: AtomicU64::new(0),
        });
        let mut conn = ConnState {
            readers: std::collections::HashMap::new(),
        };
        let line = |ctx: &Arc<ServerCtx>, conn: &mut ConnState, req: &str| -> String {
            match handle_request(ctx, conn, req) {
                Reply::Line(s) | Reply::Quit(s) => s,
            }
        };
        assert_eq!(line(&ctx, &mut conn, "PING"), "OK pong");
        assert_eq!(line(&ctx, &mut conn, "TABLES"), "OK 0");
        assert!(line(&ctx, &mut conn, "").starts_with("ERR 2 "));
        assert!(line(&ctx, &mut conn, "NOPE x").starts_with("ERR 2 "));
        assert!(line(&ctx, &mut conn, "ESTIMATE ghost 0 0 1 1").starts_with("ERR 2 "));
        assert_eq!(line(&ctx, &mut conn, "CREATE t"), "OK created t");
        assert!(line(&ctx, &mut conn, "INSERT t a b c d").starts_with("ERR 4 "));
        assert_eq!(line(&ctx, &mut conn, "INSERT t 0 0 1 1"), "OK 0");
        assert!(line(&ctx, &mut conn, "ESTIMATE t nan 0 1 1").starts_with("ERR 2 "));
        assert!(
            line(&ctx, &mut conn, "SNAPSHOT t SAVE /tmp/x").starts_with("ERR 2 "),
            "NoStats is usage"
        );
        assert_eq!(line(&ctx, &mut conn, "SHUTDOWN"), "OK bye");
        assert!(ctx.shutdown.load(Ordering::SeqCst));
    }

    #[test]
    fn maintain_verb_runs_and_switches_modes() {
        let ctx = Arc::new(ServerCtx {
            catalog: Arc::new(SpatialCatalog::new()),
            options: ServeOptions::default(),
            registry: Registry::new(),
            shutdown: AtomicBool::new(false),
            active: AtomicU64::new(0),
        });
        let mut conn = ConnState {
            readers: std::collections::HashMap::new(),
        };
        let line = |ctx: &Arc<ServerCtx>, conn: &mut ConnState, req: &str| -> String {
            match handle_request(ctx, conn, req) {
                Reply::Line(s) | Reply::Quit(s) => s,
            }
        };
        assert!(line(&ctx, &mut conn, "MAINTAIN").starts_with("ERR 2 "));
        assert!(line(&ctx, &mut conn, "MAINTAIN ghost").starts_with("ERR 2 "));
        assert_eq!(line(&ctx, &mut conn, "CREATE t"), "OK created t");
        assert!(line(&ctx, &mut conn, "MAINTAIN t MODE bogus").starts_with("ERR 2 "));
        assert_eq!(
            line(&ctx, &mut conn, "MAINTAIN t MODE refine"),
            "OK maintenance t mode=refine"
        );
        // STATS surfaces the mode; staleness is null until stats exist.
        let stats = line(&ctx, &mut conn, "STATS t");
        assert!(stats.contains("\"maintenance\":\"refine\""), "{stats:?}");
        assert!(stats.contains("\"staleness\":null"), "{stats:?}");
        // A maintenance pass on a fresh (never-analyzed) table repairs by
        // installing statistics and reports its audit and action.
        let reply = line(&ctx, &mut conn, "MAINTAIN t");
        assert!(
            reply.starts_with("OK maintained t mode=refine"),
            "{reply:?}"
        );
        assert_eq!(line(&ctx, &mut conn, "INSERT t 0 0 1 1"), "OK 0");
        assert!(line(&ctx, &mut conn, "ANALYZE t").starts_with("OK analyzed t"));
        let stats = line(&ctx, &mut conn, "STATS t");
        assert!(stats.contains("\"staleness\":0.000000"), "{stats:?}");
    }
}
