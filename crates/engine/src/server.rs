//! A zero-dependency TCP front-end serving a [`SpatialCatalog`] over a
//! line-based protocol (`std::net` only — no external crates).
//!
//! # Protocol
//!
//! Requests and responses are single UTF-8 lines terminated by `\n`.
//! Responses are `OK <payload>` or `ERR <code> <message>`, where `<code>`
//! is the CLI's exit-code taxonomy (DESIGN.md §7): `2` usage, `3` I/O,
//! `4` malformed data, `5` corrupt statistics, `6` build failure.
//!
//! | Request | Response |
//! |---|---|
//! | `PING` | `OK pong` |
//! | `TABLES` | `OK <n> <name>...` |
//! | `CREATE <t> [buckets=N] [shards=S] [technique=T]` | `OK created <t>` |
//! | `DROP <t>` | `OK dropped <t>` |
//! | `INSERT <t> <x1> <y1> <x2> <y2>` | `OK <rowid>` |
//! | `DELETE <t> <rowid>` | `OK deleted <rowid>` |
//! | `ANALYZE <t>` | `OK analyzed <t> buckets=<B> fallback=<F> shards=<S>` |
//! | `ESTIMATE <t> <x1> <y1> <x2> <y2>` | `OK <estimate>` |
//! | `BATCH <t> <n> <x1> <y1> <x2> <y2> ...` | `OK <e1> <e2> ...` |
//! | `STATS [<t>]` | `OK {...}` (single-line JSON) |
//! | `MAINTAIN <t>` | `OK maintained <t> mode=<m> accuracy: ...; action: ...` |
//! | `MAINTAIN <t> MODE off\|reanalyze\|refine` | `OK maintenance <t> mode=<m>` |
//! | `SNAPSHOT <t> SAVE\|LOAD <path>` | `OK saved/loaded ...` |
//! | `EXPLAIN <t> <x1> <y1> <x2> <y2>` | `OK {...}` (single-line JSON trace) |
//! | `FLIGHT [N]` | `OK <k>` + `k` lines of wire flight-record JSONL |
//! | `FLIGHT <t> [N]` | `OK <k>` + `k` lines of table `<t>`'s flight JSONL |
//! | `METRICS [json\|text]` | `OK <k>` + `k` lines of the server registry |
//! | `METRICS <t> [json\|text]` | `OK <k>` + `k` lines of table `<t>`'s registry |
//! | `SHUTDOWN` | `OK bye` (server stops accepting and drains) |
//!
//! # Trace ids
//!
//! Any request may carry an optional `TID=<token>` prefix (1–64 characters
//! from `[A-Za-z0-9._-]`): `TID=req7 ESTIMATE t 0 0 1 1`. The reply to a
//! `TID`-prefixed request is prefixed `TID=<token> ` (`TID=req7 OK 42`),
//! and the token is stamped into any flight record the request produces,
//! so a client can join its own requests to the server's flight JSONL. A
//! malformed token is a usage error (`ERR 2 ...`, no echo). Requests
//! without the prefix are byte-for-byte unchanged — the golden transcripts
//! pin that.
//!
//! `EXPLAIN` answers with the full estimate trace (serving path, cache
//! disposition, per-bucket terms, pruning counters); its `estimate` field
//! is bit-identical to what `ESTIMATE` returns for the same query.
//! `FLIGHT` drains flight recorders: bare for the server's wire records
//! (slow or 1-in-N-sampled `ESTIMATE` requests, trace ids attached), with
//! a table name for that table's engine-level records (slow / wrong /
//! sampled; see [`crate::TableOptions::flight_capacity`]). `METRICS`
//! makes registries scrapeable live instead of dumped only at shutdown.
//!
//! Estimates are formatted with Rust's shortest-round-trip `f64` display,
//! so `parse::<f64>()` on the client recovers the exact bits — the wire
//! preserves the bitwise differential contract.
//!
//! Malformed input yields a typed `ERR` reply and the connection keeps
//! serving; the only lines that close a connection are transport-level
//! (EOF, an over-long line, an unwritable socket). A request can never
//! panic the server: handlers touch only total functions and typed errors.
//!
//! # Concurrency
//!
//! Thread per connection. `ESTIMATE`/`BATCH` go through per-connection
//! [`SpatialReader`]s — the lock-free snapshot path — so estimate traffic
//! on one table proceeds concurrently across connections even while a
//! writer runs `ANALYZE`. Mutating verbs lock only their target table.
//!
//! Per-connection and per-verb counters, request latency, and per-shard
//! routing counters flow into the server's [`Registry`]
//! ([`ServerHandle::metrics`]).

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use minskew_geom::Rect;
use minskew_obs::{FlightRecorder, FlightTrigger, QueryRecord, Registry, Stopwatch};

use crate::catalog::{CatalogEntry, CatalogError, SpatialCatalog};
use crate::persist::SnapshotIoError;
use crate::publish::{EstimatePath, EstimateTrace};
use crate::reader::SpatialReader;
use crate::table::{MaintenanceMode, RowId, StatsTechnique, TableOptions};

/// Hard cap on one request line (transport protection; a longer line
/// closes the connection after a typed error).
const MAX_LINE: usize = 1 << 20;

/// Configuration for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; port `0` picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Options for tables created via the `CREATE` verb (bucket budget,
    /// shard count, and technique are overridable per request).
    pub table_options: TableOptions,
    /// Maximum query count accepted by one `BATCH` request.
    pub max_batch: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: String::from("127.0.0.1:0"),
            table_options: TableOptions::default(),
            max_batch: 4096,
        }
    }
}

/// Shared server context.
#[derive(Debug)]
struct ServerCtx {
    catalog: Arc<SpatialCatalog>,
    options: ServeOptions,
    registry: Registry,
    shutdown: AtomicBool,
    active: AtomicU64,
    /// Wire-level flight recorder: slow or 1-in-N-sampled `ESTIMATE`
    /// requests, with the client's trace id stamped in. Sized by the
    /// table options' flight knobs (drained by the bare `FLIGHT` verb).
    flight: FlightRecorder,
    /// Total `ESTIMATE` requests offered to the wire recorder (drives the
    /// 1-in-N sampled trigger).
    wire_estimates: AtomicU64,
}

impl ServerCtx {
    fn bump(&self, name: &str) {
        if minskew_obs::enabled() {
            self.registry.counter(name).inc();
        }
    }

    /// Offers one served wire estimate to the wire flight recorder:
    /// `slow` when the request latency crosses the table options' slow
    /// threshold, else a 1-in-`flight_sample` baseline record. Runs after
    /// the reply value is fixed, so it can never perturb an estimate.
    fn note_wire_flight(
        &self,
        tid: &str,
        query: &Rect,
        estimate: f64,
        latency_ns: u64,
        generation: u64,
    ) {
        if self.flight.capacity() == 0 {
            return;
        }
        let opts = &self.options.table_options;
        let n = self.wire_estimates.fetch_add(1, Ordering::Relaxed);
        let trigger = if opts.flight_slow_ns > 0 && latency_ns >= opts.flight_slow_ns {
            FlightTrigger::Slow
        } else if opts.flight_sample > 0 && n.is_multiple_of(u64::from(opts.flight_sample)) {
            FlightTrigger::Sampled
        } else {
            return;
        };
        self.flight.record(&QueryRecord {
            trigger,
            tid: tid.to_string(),
            query: [query.lo.x, query.lo.y, query.hi.x, query.hi.y],
            estimate,
            exact: None,
            latency_ns,
            generation,
        });
        self.bump("serve.flight.recorded");
    }
}

/// Handle to a running server. Dropping the handle does **not** stop the
/// server; call [`ServerHandle::shutdown`] (or send the `SHUTDOWN` verb).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    ctx: Arc<ServerCtx>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port `0` requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the accept loop to stop. Existing connections drain (each
    /// notices the flag within its read-poll interval).
    pub fn request_shutdown(&self) {
        self.ctx.shutdown.store(true, Ordering::SeqCst);
    }

    /// `true` once shutdown has been requested (by this handle or by a
    /// `SHUTDOWN` request over the wire).
    pub fn shutdown_requested(&self) -> bool {
        self.ctx.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until the accept loop and every connection thread exit.
    pub fn join(mut self) -> minskew_obs::RegistrySnapshot {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.ctx.registry.snapshot()
    }

    /// Requests shutdown and waits for a clean drain; returns the final
    /// metrics snapshot.
    pub fn shutdown(self) -> minskew_obs::RegistrySnapshot {
        self.request_shutdown();
        self.join()
    }

    /// A point-in-time snapshot of the server's metrics registry
    /// (`serve.*` counters, gauges, latency histograms).
    pub fn metrics(&self) -> minskew_obs::RegistrySnapshot {
        self.ctx.registry.snapshot()
    }
}

/// Starts serving `catalog` per `options`; returns once the listener is
/// bound. See the module docs for the protocol.
pub fn serve(catalog: Arc<SpatialCatalog>, options: ServeOptions) -> std::io::Result<ServerHandle> {
    let addrs: Vec<SocketAddr> = options.addr.to_socket_addrs()?.collect();
    let listener = TcpListener::bind(&addrs[..])?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let flight_capacity = if options.table_options.metrics {
        options.table_options.flight_capacity
    } else {
        0
    };
    let ctx = Arc::new(ServerCtx {
        catalog,
        options,
        registry: Registry::new(),
        shutdown: AtomicBool::new(false),
        active: AtomicU64::new(0),
        flight: FlightRecorder::new(flight_capacity),
        wire_estimates: AtomicU64::new(0),
    });
    let accept_ctx = Arc::clone(&ctx);
    let accept = std::thread::spawn(move || accept_loop(listener, accept_ctx));
    Ok(ServerHandle {
        addr,
        ctx,
        accept: Some(accept),
    })
}

fn accept_loop(listener: TcpListener, ctx: Arc<ServerCtx>) {
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !ctx.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                ctx.bump("serve.connections");
                let conn_ctx = Arc::clone(&ctx);
                conns.push(std::thread::spawn(move || {
                    handle_connection(stream, conn_ctx)
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                // Reap finished connection threads opportunistically.
                conns.retain(|c| !c.is_finished());
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    drop(listener);
    for conn in conns {
        let _ = conn.join();
    }
}

/// Per-connection state: cached lock-free readers (one per table touched)
/// and their resolved per-shard routing counters.
struct ConnState {
    readers: std::collections::HashMap<String, TableReader>,
}

struct TableReader {
    reader: SpatialReader,
    /// `serve.table.<t>.shard.<s>.routed`, resolved lazily per shard.
    shard_counters: Vec<Arc<minskew_obs::Counter>>,
}

fn handle_connection(stream: TcpStream, ctx: Arc<ServerCtx>) {
    let _ = stream.set_nodelay(true);
    // Poll the shutdown flag between reads so drains are prompt.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    ctx.active.fetch_add(1, Ordering::SeqCst);
    if minskew_obs::enabled() {
        ctx.registry
            .gauge("serve.active_connections")
            .set(ctx.active.load(Ordering::SeqCst) as f64);
    }
    serve_requests(stream, &ctx);
    let now = ctx.active.fetch_sub(1, Ordering::SeqCst) - 1;
    if minskew_obs::enabled() {
        ctx.registry
            .gauge("serve.active_connections")
            .set(now as f64);
    }
}

fn serve_requests(mut stream: TcpStream, ctx: &Arc<ServerCtx>) {
    let mut conn = ConnState {
        readers: std::collections::HashMap::new(),
    };
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 4096];
    loop {
        // Serve every complete line already buffered.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line_bytes);
            let reply = handle_request(ctx, &mut conn, line.trim_end_matches(['\n', '\r']));
            let quit = matches!(reply, Reply::Quit(_));
            let text = match reply {
                Reply::Line(s) | Reply::Quit(s) => s,
            };
            if stream.write_all(text.as_bytes()).is_err()
                || stream.write_all(b"\n").is_err()
                || stream.flush().is_err()
            {
                return;
            }
            if quit {
                return;
            }
        }
        if buf.len() > MAX_LINE {
            // Transport protection: an unbounded line would buffer forever.
            let _ = stream.write_all(b"ERR 2 usage: request line exceeds 1 MiB\n");
            return;
        }
        if ctx.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

enum Reply {
    Line(String),
    /// Write the line, then stop the whole server (the `SHUTDOWN` verb).
    Quit(String),
}

fn ok(payload: impl std::fmt::Display) -> Reply {
    Reply::Line(format!("OK {payload}"))
}

fn err(code: u8, message: impl std::fmt::Display) -> Reply {
    Reply::Line(format!("ERR {code} {message}"))
}

fn catalog_err(e: CatalogError) -> Reply {
    match e {
        CatalogError::Build(inner) => err(6, format!("build: {inner}")),
        other => err(2, format!("usage: {other}")),
    }
}

fn snapshot_err(e: SnapshotIoError) -> Reply {
    match e {
        SnapshotIoError::NoStats => err(2, format!("usage: {e}")),
        SnapshotIoError::Io(_) | SnapshotIoError::Write(_) => err(3, format!("io: {e}")),
        SnapshotIoError::Corrupt(_) => err(5, format!("corrupt: {e}")),
    }
}

/// Splits an optional `TID=<token>` prefix off a request line. Returns the
/// token (`""` when absent) and the remainder of the line. A present but
/// malformed token is a usage error with **no** echo: the server refuses to
/// reflect bytes it could not validate.
fn split_tid(line: &str) -> Result<(&str, &str), Reply> {
    let trimmed = line.trim_start();
    let Some(rest) = trimmed.strip_prefix("TID=") else {
        return Ok(("", line));
    };
    let split = rest.find(|c: char| c.is_ascii_whitespace());
    let (token, remainder) = match split {
        Some(pos) => (&rest[..pos], &rest[pos..]),
        None => (rest, ""),
    };
    let valid = !token.is_empty()
        && token.len() <= 64
        && token
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'));
    if !valid {
        return Err(err(
            2,
            format_args!("usage: bad trace id (want 1-64 chars of [A-Za-z0-9._-])"),
        ));
    }
    Ok((token, remainder))
}

/// Dispatches one request line. Total: every input maps to exactly one
/// reply, and nothing here can panic on malformed input.
fn handle_request(ctx: &Arc<ServerCtx>, conn: &mut ConnState, line: &str) -> Reply {
    let mut clock = Stopwatch::start();
    ctx.bump("serve.requests");
    let (tid, rest) = match split_tid(line) {
        Ok(pair) => pair,
        Err(reply) => {
            if minskew_obs::enabled() {
                ctx.registry
                    .histogram("serve.request_ns")
                    .record(clock.lap());
                ctx.bump("serve.errors");
            }
            return reply;
        }
    };
    let reply = dispatch(ctx, conn, rest, tid);
    if minskew_obs::enabled() {
        ctx.registry
            .histogram("serve.request_ns")
            .record(clock.lap());
        // Counted before the echo is applied, so a `TID=`-prefixed error
        // still registers as an error.
        if matches!(&reply, Reply::Line(s) if s.starts_with("ERR")) {
            ctx.bump("serve.errors");
        }
    }
    if tid.is_empty() {
        reply
    } else {
        match reply {
            Reply::Line(s) => Reply::Line(format!("TID={tid} {s}")),
            Reply::Quit(s) => Reply::Quit(format!("TID={tid} {s}")),
        }
    }
}

fn dispatch(ctx: &Arc<ServerCtx>, conn: &mut ConnState, line: &str, tid: &str) -> Reply {
    let mut tokens = line.split_ascii_whitespace();
    let Some(verb) = tokens.next() else {
        return err(2, "usage: empty request");
    };
    let args: Vec<&str> = tokens.collect();
    let verb_upper = verb.to_ascii_uppercase();
    if minskew_obs::enabled() {
        ctx.bump(&format!(
            "serve.verb.{}",
            minskew_obs::name_component(&verb_upper)
        ));
    }
    match verb_upper.as_str() {
        "PING" => ok("pong"),
        "TABLES" => {
            let names = ctx.catalog.list();
            let mut payload = names.len().to_string();
            for name in names {
                payload.push(' ');
                payload.push_str(&name);
            }
            ok(payload)
        }
        "CREATE" => cmd_create(ctx, &args),
        "DROP" => match args[..] {
            [name] => match ctx.catalog.drop_table(name) {
                Ok(()) => ok(format_args!("dropped {name}")),
                Err(e) => catalog_err(e),
            },
            _ => err(2, "usage: DROP <table>"),
        },
        "INSERT" => cmd_insert(ctx, &args),
        "DELETE" => cmd_delete(ctx, &args),
        "ANALYZE" => cmd_analyze(ctx, &args),
        "ESTIMATE" => cmd_estimate(ctx, conn, &args, tid),
        "BATCH" => cmd_batch(ctx, conn, &args),
        "EXPLAIN" => cmd_explain(ctx, conn, &args),
        "FLIGHT" => cmd_flight(ctx, &args),
        "METRICS" => cmd_metrics(ctx, &args),
        "STATS" => cmd_stats(ctx, &args),
        "MAINTAIN" => cmd_maintain(ctx, &args),
        "SNAPSHOT" => cmd_snapshot(ctx, &args),
        "SHUTDOWN" => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            Reply::Quit(String::from("OK bye"))
        }
        other => err(2, format_args!("usage: unknown verb {other:?}")),
    }
}

fn cmd_create(ctx: &Arc<ServerCtx>, args: &[&str]) -> Reply {
    let [name, opts @ ..] = args else {
        return err(
            2,
            "usage: CREATE <table> [buckets=N] [shards=S] [technique=T]",
        );
    };
    let mut options = ctx.options.table_options;
    for opt in opts {
        let Some((key, value)) = opt.split_once('=') else {
            return err(
                2,
                format_args!("usage: bad option {opt:?} (want key=value)"),
            );
        };
        match key {
            "buckets" => match value.parse::<usize>() {
                Ok(v) => options.analyze.buckets = v,
                Err(_) => return err(2, format_args!("usage: bad buckets {value:?}")),
            },
            "shards" => match value.parse::<usize>() {
                Ok(v) => options.shards = v,
                Err(_) => return err(2, format_args!("usage: bad shards {value:?}")),
            },
            "technique" => {
                options.analyze.technique = match value {
                    "min-skew" | "minskew" => StatsTechnique::MinSkew,
                    "equi-area" => StatsTechnique::EquiArea,
                    "equi-count" => StatsTechnique::EquiCount,
                    "uniform" => StatsTechnique::Uniform,
                    _ => return err(2, format_args!("usage: unknown technique {value:?}")),
                }
            }
            _ => return err(2, format_args!("usage: unknown option {key:?}")),
        }
    }
    match ctx.catalog.create(name, options) {
        Ok(_) => ok(format_args!("created {name}")),
        Err(e) => catalog_err(e),
    }
}

fn lookup(ctx: &Arc<ServerCtx>, name: &str) -> Result<Arc<CatalogEntry>, Reply> {
    ctx.catalog
        .get(name)
        .ok_or_else(|| err(2, format_args!("usage: unknown table {name:?}")))
}

/// Parses four tokens into a rectangle. `code` distinguishes query usage
/// errors (2) from malformed data (4), per the exit-code taxonomy.
fn parse_rect(tokens: &[&str], code: u8) -> Result<Rect, Reply> {
    let [x1, y1, x2, y2] = tokens else {
        return Err(err(code, "expected <x1> <y1> <x2> <y2>"));
    };
    let parse = |t: &str| -> Result<f64, Reply> {
        match t.parse::<f64>() {
            Ok(v) => Ok(v),
            Err(_) => Err(err(code, format!("bad coordinate {t:?}"))),
        }
    };
    let rect = Rect::try_new(parse(x1)?, parse(y1)?, parse(x2)?, parse(y2)?)
        .map_err(|e| err(code, e.to_string()))?;
    Ok(rect)
}

fn cmd_insert(ctx: &Arc<ServerCtx>, args: &[&str]) -> Reply {
    let [name, coords @ ..] = args else {
        return err(2, "usage: INSERT <table> <x1> <y1> <x2> <y2>");
    };
    let rect = match parse_rect(coords, 4) {
        Ok(r) => r,
        Err(reply) => return reply,
    };
    match lookup(ctx, name) {
        Ok(entry) => {
            let id = entry.table().insert(rect);
            ok(id.raw())
        }
        Err(reply) => reply,
    }
}

fn cmd_delete(ctx: &Arc<ServerCtx>, args: &[&str]) -> Reply {
    let [name, id] = args else {
        return err(2, "usage: DELETE <table> <rowid>");
    };
    let Ok(row) = id.parse::<u64>() else {
        return err(2, format_args!("usage: bad rowid {id:?}"));
    };
    match lookup(ctx, name) {
        Ok(entry) => {
            if entry.table().delete(RowId::from_raw(row)) {
                ok(format_args!("deleted {row}"))
            } else {
                err(2, format_args!("usage: unknown rowid {row}"))
            }
        }
        Err(reply) => reply,
    }
}

fn cmd_analyze(ctx: &Arc<ServerCtx>, args: &[&str]) -> Reply {
    let [name] = args else {
        return err(2, "usage: ANALYZE <table>");
    };
    match lookup(ctx, name) {
        Ok(entry) => {
            let mut table = entry.table();
            table.analyze();
            let diag = table.stats_diagnostics();
            let shards = table.current_snapshot().num_shards();
            ok(format_args!(
                "analyzed {name} buckets={} fallback={} shards={shards}",
                diag.achieved_buckets, diag.fallback
            ))
        }
        Err(reply) => reply,
    }
}

/// Per-connection reader for `name`, minted lock-free on first use.
fn conn_reader<'a>(
    ctx: &Arc<ServerCtx>,
    conn: &'a mut ConnState,
    name: &str,
) -> Result<&'a mut TableReader, Reply> {
    if !conn.readers.contains_key(name) {
        let entry = lookup(ctx, name)?;
        conn.readers.insert(
            name.to_string(),
            TableReader {
                reader: entry.reader(),
                shard_counters: Vec::new(),
            },
        );
    }
    Ok(conn
        .readers
        .get_mut(name)
        .expect("reader inserted just above"))
}

/// Counts routed shards into `serve.table.<t>.shard.<s>.routed`.
fn note_routing(ctx: &Arc<ServerCtx>, name: &str, tr: &mut TableReader) {
    if !minskew_obs::enabled() {
        return;
    }
    let Some(routed) = tr.reader.routed_shards() else {
        return;
    };
    if tr.shard_counters.len() < routed.len() {
        let table = minskew_obs::name_component(name);
        for s in tr.shard_counters.len()..routed.len() {
            tr.shard_counters.push(
                ctx.registry
                    .counter(&format!("serve.table.{table}.shard.{s}.routed")),
            );
        }
    }
    for (s, &hit) in routed.iter().enumerate() {
        if hit {
            tr.shard_counters[s].inc();
        }
    }
}

/// Adds the per-shard routed totals of the most recent batch into
/// `serve.table.<t>.shard.<s>.routed`.
fn note_batch_routing(ctx: &Arc<ServerCtx>, name: &str, tr: &mut TableReader) {
    if !minskew_obs::enabled() {
        return;
    }
    let routed = tr.reader.batch_shard_routing();
    if routed.is_empty() {
        return;
    }
    if tr.shard_counters.len() < routed.len() {
        let table = minskew_obs::name_component(name);
        for s in tr.shard_counters.len()..routed.len() {
            tr.shard_counters.push(
                ctx.registry
                    .counter(&format!("serve.table.{table}.shard.{s}.routed")),
            );
        }
    }
    for (s, &hits) in routed.iter().enumerate() {
        tr.shard_counters[s].add(hits);
    }
}

fn cmd_estimate(ctx: &Arc<ServerCtx>, conn: &mut ConnState, args: &[&str], tid: &str) -> Reply {
    let [name, coords @ ..] = args else {
        return err(2, "usage: ESTIMATE <table> <x1> <y1> <x2> <y2>");
    };
    let rect = match parse_rect(coords, 2) {
        Ok(r) => r,
        Err(reply) => return reply,
    };
    let tr = match conn_reader(ctx, conn, name) {
        Ok(tr) => tr,
        Err(reply) => return reply,
    };
    let mut clock = Stopwatch::start();
    match tr.reader.try_estimate(&rect) {
        Ok(value) => {
            // The reply value is already fixed: recording can only observe.
            let latency_ns = clock.lap();
            note_routing(ctx, name, tr);
            ctx.bump("serve.estimates");
            ctx.note_wire_flight(tid, &rect, value, latency_ns, tr.reader.generation());
            ok(value)
        }
        Err(e) => err(2, format_args!("usage: {e}")),
    }
}

fn cmd_batch(ctx: &Arc<ServerCtx>, conn: &mut ConnState, args: &[&str]) -> Reply {
    let [name, count, coords @ ..] = args else {
        return err(2, "usage: BATCH <table> <n> <x1> <y1> <x2> <y2> ...");
    };
    let Ok(n) = count.parse::<usize>() else {
        return err(2, format_args!("usage: bad count {count:?}"));
    };
    if n > ctx.options.max_batch {
        return err(
            2,
            format_args!(
                "usage: batch of {n} exceeds the limit of {}",
                ctx.options.max_batch
            ),
        );
    }
    if coords.len() != 4 * n {
        return err(
            2,
            format_args!(
                "usage: expected {} coordinates, got {}",
                4 * n,
                coords.len()
            ),
        );
    }
    let mut queries = Vec::with_capacity(n);
    for quad in coords.chunks_exact(4) {
        match parse_rect(quad, 2) {
            Ok(rect) => queries.push(rect),
            Err(reply) => return reply,
        }
    }
    let tr = match conn_reader(ctx, conn, name) {
        Ok(tr) => tr,
        Err(reply) => return reply,
    };
    // One Morton-ordered pass over one snapshot; replies come back in
    // request order and are bit-identical to a per-query loop.
    let values = match tr.reader.try_estimate_batch(&queries) {
        Ok(values) => values,
        Err(e) => return err(2, format_args!("usage: {e}")),
    };
    note_batch_routing(ctx, name, tr);
    let mut payload = String::with_capacity(values.len() * 8);
    for (i, value) in values.iter().enumerate() {
        if i > 0 {
            payload.push(' ');
        }
        payload.push_str(&value.to_string());
    }
    if minskew_obs::enabled() {
        ctx.registry
            .counter("serve.estimates")
            .add(queries.len() as u64);
    }
    ok(payload)
}

/// A number for hand-written JSON: shortest-round-trip for finite values,
/// `null` otherwise (JSON has no Inf/NaN).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        v.to_string()
    } else {
        String::from("null")
    }
}

/// A JSON string literal (quotes, backslash, control characters escaped).
fn json_str(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Cap on per-bucket terms inlined into an `EXPLAIN` reply; the full count
/// is always reported as `terms_total`.
const EXPLAIN_MAX_TERMS: usize = 32;

/// One-line JSON for an estimate trace (the `EXPLAIN` payload).
fn trace_json(trace: &EstimateTrace) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"estimate\":{},\"raw\":{},\"clamped\":{},\"path\":{}",
        json_num(trace.estimate),
        json_num(trace.raw),
        trace.clamped,
        json_str(trace.path.label()),
    );
    if let EstimatePath::Sharded { shards } = trace.path {
        let _ = write!(out, ",\"shards\":{shards}");
    }
    let _ = write!(
        out,
        ",\"generation\":{},\"stats_era\":{},\"live\":{},\"cache\":{}",
        trace.generation,
        trace.stats_era,
        trace.live,
        json_str(trace.cache.label()),
    );
    match &trace.detail {
        None => out.push_str(",\"detail\":null}"),
        Some(d) => {
            let k = &d.kernel;
            let _ = write!(
                out,
                ",\"detail\":{{\"technique\":{},\"rule\":{},\"buckets\":{},\
                 \"total_count\":{},\"saw_pos_zero\":{},\"prune\":{{\"blocks\":{},\
                 \"blocks_pruned\":{},\"quads_tested\":{},\"quads_pruned\":{},\
                 \"buckets_classified\":{}}},\"terms_total\":{},\"terms\":[",
                json_str(&d.technique),
                json_str(d.rule.label()),
                d.num_buckets,
                json_num(d.total_count),
                k.saw_pos_zero,
                k.prune.blocks,
                k.prune.blocks_pruned,
                k.prune.quads_tested,
                k.prune.quads_pruned,
                k.prune.buckets_classified,
                k.terms.len(),
            );
            for (i, t) in k.terms.iter().take(EXPLAIN_MAX_TERMS).enumerate() {
                let sep = if i == 0 { "" } else { "," };
                let _ = write!(
                    out,
                    "{sep}{{\"bucket\":{},\"count\":{},\"ex\":{},\"ey\":{},\
                     \"fraction\":{},\"term\":{}}}",
                    t.bucket,
                    json_num(t.count),
                    json_num(t.ex),
                    json_num(t.ey),
                    json_num(t.fraction),
                    json_num(t.term),
                );
            }
            out.push_str("]}}");
        }
    }
    out
}

fn cmd_explain(ctx: &Arc<ServerCtx>, conn: &mut ConnState, args: &[&str]) -> Reply {
    let [name, coords @ ..] = args else {
        return err(2, "usage: EXPLAIN <table> <x1> <y1> <x2> <y2>");
    };
    let rect = match parse_rect(coords, 2) {
        Ok(r) => r,
        Err(reply) => return reply,
    };
    let tr = match conn_reader(ctx, conn, name) {
        Ok(tr) => tr,
        Err(reply) => return reply,
    };
    match tr.reader.try_explain(&rect) {
        Ok(trace) => {
            ctx.bump("serve.explains");
            ok(trace_json(&trace))
        }
        Err(e) => err(2, format_args!("usage: {e}")),
    }
}

/// Frames a multi-line payload as `OK <k>` followed by its `k` lines, all
/// written as one reply (the transport appends the final newline).
fn framed(payload: &str) -> Reply {
    let body = payload.strip_suffix('\n').unwrap_or(payload);
    if body.is_empty() {
        return ok(0);
    }
    Reply::Line(format!("OK {}\n{body}", body.lines().count()))
}

fn cmd_flight(ctx: &Arc<ServerCtx>, args: &[&str]) -> Reply {
    // Bare `FLIGHT [N]` drains the server's wire recorder; `FLIGHT <t> [N]`
    // a table's engine-level recorder. A first argument that parses as a
    // count is a count — table names that look like numbers lose.
    let jsonl = match args {
        [] => ctx.flight.to_jsonl(usize::MAX),
        [first] => {
            if let Ok(max) = first.parse::<usize>() {
                ctx.flight.to_jsonl(max)
            } else {
                match lookup(ctx, first) {
                    Ok(entry) => entry.table().flight_recorder().to_jsonl(usize::MAX),
                    Err(reply) => return reply,
                }
            }
        }
        [name, max] => {
            let Ok(max) = max.parse::<usize>() else {
                return err(2, format_args!("usage: bad count {max:?}"));
            };
            match lookup(ctx, name) {
                Ok(entry) => entry.table().flight_recorder().to_jsonl(max),
                Err(reply) => return reply,
            }
        }
        _ => return err(2, "usage: FLIGHT [<table>] [N]"),
    };
    ctx.bump("serve.flight.drains");
    framed(&jsonl)
}

fn cmd_metrics(ctx: &Arc<ServerCtx>, args: &[&str]) -> Reply {
    // Bare `METRICS [json|text]` scrapes the server registry;
    // `METRICS <t> [json|text]` a table's. The format literals win the
    // one-argument ambiguity, like `FLIGHT`'s counts.
    let (snap, format) = match args {
        [] => (ctx.registry.snapshot(), "json"),
        [first] if *first == "json" || *first == "text" => (ctx.registry.snapshot(), *first),
        [name] => match lookup(ctx, name) {
            Ok(entry) => (entry.table().metrics(), "json"),
            Err(reply) => return reply,
        },
        [name, format] => match lookup(ctx, name) {
            Ok(entry) => (entry.table().metrics(), *format),
            Err(reply) => return reply,
        },
        _ => return err(2, "usage: METRICS [<table>] [json|text]"),
    };
    let text = match format {
        "json" => snap.to_json(),
        "text" => snap.to_text(),
        other => return err(2, format_args!("usage: unknown metrics format {other:?}")),
    };
    ctx.bump("serve.metrics.scrapes");
    framed(&text)
}

fn cmd_stats(ctx: &Arc<ServerCtx>, args: &[&str]) -> Reply {
    match args {
        [] => {
            let lat = ctx.registry.histogram("serve.request_ns").snapshot();
            ok(format_args!(
                "{{\"tables\":{},\"active_connections\":{},\"request_ns\":\
                 {{\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}}}",
                ctx.catalog.len(),
                ctx.active.load(Ordering::SeqCst),
                lat.count,
                lat.quantile_upper_bound(0.5),
                lat.quantile_upper_bound(0.95),
                lat.quantile_upper_bound(0.99),
            ))
        }
        [name] => match lookup(ctx, name) {
            Ok(entry) => {
                let table = entry.table();
                let snapshot = table.current_snapshot();
                let diag = table.stats_diagnostics();
                let buckets = snapshot.stats().map_or(0, |s| s.histogram().num_buckets());
                // Filter non-finite staleness: `{s:.6}` would otherwise
                // print a bare `NaN`/`inf` token into the JSON reply.
                let staleness = table
                    .stats_staleness()
                    .filter(|s| s.is_finite())
                    .map_or_else(|| String::from("null"), |s| format!("{s:.6}"));
                ok(format_args!(
                    "{{\"table\":\"{name}\",\"rows\":{},\"buckets\":{buckets},\"shards\":{},\
                     \"generation\":{},\"fallback\":\"{}\",\"maintenance\":\"{}\",\
                     \"staleness\":{staleness}}}",
                    table.len(),
                    snapshot.num_shards(),
                    snapshot.generation(),
                    diag.fallback,
                    table.maintenance_mode(),
                ))
            }
            Err(reply) => reply,
        },
        _ => err(2, "usage: STATS [<table>]"),
    }
}

fn cmd_maintain(ctx: &Arc<ServerCtx>, args: &[&str]) -> Reply {
    match args {
        [name] => match lookup(ctx, name) {
            Ok(entry) => {
                let mut table = entry.table();
                let report = table.maintain();
                ok(format_args!(
                    "maintained {name} mode={} {report}",
                    table.maintenance_mode()
                ))
            }
            Err(reply) => reply,
        },
        [name, mode_kw, mode] if mode_kw.eq_ignore_ascii_case("MODE") => {
            let parsed: MaintenanceMode = match mode.parse() {
                Ok(m) => m,
                Err(e) => return err(2, format_args!("usage: {e}")),
            };
            match lookup(ctx, name) {
                Ok(entry) => {
                    entry.table().set_maintenance_mode(parsed);
                    ok(format_args!("maintenance {name} mode={parsed}"))
                }
                Err(reply) => reply,
            }
        }
        _ => err(2, "usage: MAINTAIN <table> [MODE off|reanalyze|refine]"),
    }
}

fn cmd_snapshot(ctx: &Arc<ServerCtx>, args: &[&str]) -> Reply {
    let [name, action, path] = args else {
        return err(2, "usage: SNAPSHOT <table> SAVE|LOAD <path>");
    };
    let entry = match lookup(ctx, name) {
        Ok(entry) => entry,
        Err(reply) => return reply,
    };
    match action.to_ascii_uppercase().as_str() {
        "SAVE" => match entry.table().save_snapshot(std::path::Path::new(path)) {
            Ok(info) => ok(format_args!("saved {name} buckets={}", info.buckets)),
            Err(e) => snapshot_err(e),
        },
        "LOAD" => match entry.table().try_load_snapshot(std::path::Path::new(path)) {
            Ok(info) => ok(format_args!("loaded {name} buckets={}", info.buckets)),
            Err(e) => snapshot_err(e),
        },
        other => err(2, format_args!("usage: unknown snapshot action {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A test context with the wire flight recorder sized by `options`
    /// exactly as [`serve`] sizes it.
    fn test_ctx(options: ServeOptions) -> Arc<ServerCtx> {
        let flight_capacity = if options.table_options.metrics {
            options.table_options.flight_capacity
        } else {
            0
        };
        Arc::new(ServerCtx {
            catalog: Arc::new(SpatialCatalog::new()),
            options,
            registry: Registry::new(),
            shutdown: AtomicBool::new(false),
            active: AtomicU64::new(0),
            flight: FlightRecorder::new(flight_capacity),
            wire_estimates: AtomicU64::new(0),
        })
    }

    fn line(ctx: &Arc<ServerCtx>, conn: &mut ConnState, req: &str) -> String {
        match handle_request(ctx, conn, req) {
            Reply::Line(s) | Reply::Quit(s) => s,
        }
    }

    #[test]
    fn parse_rect_accepts_finite_and_rejects_everything_else() {
        assert!(parse_rect(&["0", "0", "1.5", "2"], 2).is_ok());
        for bad in [
            ["nan", "0", "1", "1"],
            ["inf", "0", "1", "1"],
            ["-inf", "0", "1", "1"],
            ["x", "0", "1", "1"],
            ["", "0", "1", "1"],
        ] {
            assert!(parse_rect(&bad, 2).is_err(), "{bad:?} must be rejected");
        }
        assert!(parse_rect(&["0", "0", "1"], 2).is_err(), "arity");
    }

    #[test]
    fn dispatch_maps_errors_to_the_exit_code_taxonomy() {
        let ctx = test_ctx(ServeOptions::default());
        let mut conn = ConnState {
            readers: std::collections::HashMap::new(),
        };
        assert_eq!(line(&ctx, &mut conn, "PING"), "OK pong");
        assert_eq!(line(&ctx, &mut conn, "TABLES"), "OK 0");
        assert!(line(&ctx, &mut conn, "").starts_with("ERR 2 "));
        assert!(line(&ctx, &mut conn, "NOPE x").starts_with("ERR 2 "));
        assert!(line(&ctx, &mut conn, "ESTIMATE ghost 0 0 1 1").starts_with("ERR 2 "));
        assert_eq!(line(&ctx, &mut conn, "CREATE t"), "OK created t");
        assert!(line(&ctx, &mut conn, "INSERT t a b c d").starts_with("ERR 4 "));
        assert_eq!(line(&ctx, &mut conn, "INSERT t 0 0 1 1"), "OK 0");
        assert!(line(&ctx, &mut conn, "ESTIMATE t nan 0 1 1").starts_with("ERR 2 "));
        assert!(
            line(&ctx, &mut conn, "SNAPSHOT t SAVE /tmp/x").starts_with("ERR 2 "),
            "NoStats is usage"
        );
        assert_eq!(line(&ctx, &mut conn, "SHUTDOWN"), "OK bye");
        assert!(ctx.shutdown.load(Ordering::SeqCst));
    }

    #[test]
    fn maintain_verb_runs_and_switches_modes() {
        let ctx = test_ctx(ServeOptions::default());
        let mut conn = ConnState {
            readers: std::collections::HashMap::new(),
        };
        assert!(line(&ctx, &mut conn, "MAINTAIN").starts_with("ERR 2 "));
        assert!(line(&ctx, &mut conn, "MAINTAIN ghost").starts_with("ERR 2 "));
        assert_eq!(line(&ctx, &mut conn, "CREATE t"), "OK created t");
        assert!(line(&ctx, &mut conn, "MAINTAIN t MODE bogus").starts_with("ERR 2 "));
        assert_eq!(
            line(&ctx, &mut conn, "MAINTAIN t MODE refine"),
            "OK maintenance t mode=refine"
        );
        // STATS surfaces the mode; staleness is null until stats exist.
        let stats = line(&ctx, &mut conn, "STATS t");
        assert!(stats.contains("\"maintenance\":\"refine\""), "{stats:?}");
        assert!(stats.contains("\"staleness\":null"), "{stats:?}");
        // A maintenance pass on a fresh (never-analyzed) table repairs by
        // installing statistics and reports its audit and action.
        let reply = line(&ctx, &mut conn, "MAINTAIN t");
        assert!(
            reply.starts_with("OK maintained t mode=refine"),
            "{reply:?}"
        );
        assert_eq!(line(&ctx, &mut conn, "INSERT t 0 0 1 1"), "OK 0");
        assert!(line(&ctx, &mut conn, "ANALYZE t").starts_with("OK analyzed t"));
        let stats = line(&ctx, &mut conn, "STATS t");
        assert!(stats.contains("\"staleness\":0.000000"), "{stats:?}");
    }

    #[test]
    fn trace_ids_echo_on_ok_and_err_but_malformed_never_echo() {
        let ctx = test_ctx(ServeOptions::default());
        let mut conn = ConnState {
            readers: std::collections::HashMap::new(),
        };
        assert_eq!(line(&ctx, &mut conn, "TID=req-7 PING"), "TID=req-7 OK pong");
        assert_eq!(line(&ctx, &mut conn, "PING"), "OK pong", "no echo unasked");
        // Errors echo too, so the client can still join the reply.
        assert!(line(&ctx, &mut conn, "TID=a.b_c NOPE").starts_with("TID=a.b_c ERR 2 "));
        // Malformed tokens are refused without reflection.
        for bad in [
            "TID= PING",
            "TID=has/slash PING",
            "TID=qu\"ote PING",
            &format!("TID={} PING", "x".repeat(65)),
        ] {
            let reply = line(&ctx, &mut conn, bad);
            assert!(reply.starts_with("ERR 2 "), "{bad:?} -> {reply:?}");
            assert!(!reply.contains("TID="), "{bad:?} must not echo");
        }
        // Exactly 64 chars is still valid.
        let max = format!("TID={} PING", "y".repeat(64));
        assert!(line(&ctx, &mut conn, &max).ends_with("OK pong"));
    }

    #[test]
    fn explain_matches_estimate_bitwise_and_carries_detail() {
        let ctx = test_ctx(ServeOptions::default());
        let mut conn = ConnState {
            readers: std::collections::HashMap::new(),
        };
        assert_eq!(line(&ctx, &mut conn, "CREATE t"), "OK created t");
        for i in 0..200 {
            let x = f64::from(i % 20) * 5.0;
            let y = f64::from(i / 20) * 5.0;
            let req = format!("INSERT t {x} {y} {} {}", x + 3.0, y + 3.0);
            assert!(line(&ctx, &mut conn, &req).starts_with("OK "));
        }
        assert!(line(&ctx, &mut conn, "ANALYZE t").starts_with("OK analyzed t"));
        let est = line(&ctx, &mut conn, "ESTIMATE t 10 10 60 40");
        let explain = line(&ctx, &mut conn, "EXPLAIN t 10 10 60 40");
        let value = est.strip_prefix("OK ").expect("estimate ok").to_string();
        assert!(
            explain.starts_with(&format!("OK {{\"estimate\":{value},")),
            "headline must be the serving-path bits: {explain:?} vs {est:?}"
        );
        assert!(explain.contains("\"path\":\"indexed\""), "{explain:?}");
        assert!(explain.contains("\"technique\":"), "{explain:?}");
        assert!(explain.contains("\"prune\":{"), "{explain:?}");
        assert!(explain.contains("\"terms\":[{"), "{explain:?}");
        assert!(!explain.contains('\n'), "EXPLAIN is single-line");
        // Usage errors mirror ESTIMATE's.
        assert!(line(&ctx, &mut conn, "EXPLAIN ghost 0 0 1 1").starts_with("ERR 2 "));
        assert!(line(&ctx, &mut conn, "EXPLAIN t nan 0 1 1").starts_with("ERR 2 "));
    }

    #[test]
    fn flight_drains_wire_records_with_trace_ids() {
        let mut options = ServeOptions::default();
        options.table_options.flight_sample = 1; // record every estimate
        let ctx = test_ctx(options);
        let mut conn = ConnState {
            readers: std::collections::HashMap::new(),
        };
        assert_eq!(line(&ctx, &mut conn, "CREATE t"), "OK created t");
        assert_eq!(line(&ctx, &mut conn, "INSERT t 0 0 1 1"), "OK 0");
        assert!(line(&ctx, &mut conn, "TID=q1 ESTIMATE t 0 0 2 2").starts_with("TID=q1 OK "));
        assert!(line(&ctx, &mut conn, "ESTIMATE t 0 0 3 3").starts_with("OK "));
        if !minskew_obs::enabled() {
            // Under `minskew-obs/noop` the ring has capacity 0: the verb
            // still answers, with an empty frame.
            assert_eq!(line(&ctx, &mut conn, "FLIGHT"), "OK 0");
            return;
        }
        let reply = line(&ctx, &mut conn, "FLIGHT");
        let mut lines = reply.lines();
        assert_eq!(lines.next(), Some("OK 2"), "{reply:?}");
        let first = lines.next().expect("first record");
        assert!(
            first.contains("\"schema\":\"minskew-obs/flight-v1\""),
            "{first:?}"
        );
        assert!(first.contains("\"tid\":\"q1\""), "{first:?}");
        let second = lines.next().expect("second record");
        assert!(second.contains("\"tid\":\"\""), "{second:?}");
        // Bounded drains keep the newest.
        let bounded = line(&ctx, &mut conn, "FLIGHT 1");
        assert!(bounded.starts_with("OK 1\n"), "{bounded:?}");
        // Per-table recorders answer too (empty here: no slow/wrong/sampled
        // engine-side records were produced).
        assert_eq!(line(&ctx, &mut conn, "FLIGHT t"), "OK 0");
        assert!(line(&ctx, &mut conn, "FLIGHT ghost").starts_with("ERR 2 "));
        assert!(line(&ctx, &mut conn, "FLIGHT t bogus").starts_with("ERR 2 "));
    }

    #[test]
    fn metrics_verb_scrapes_registries_live() {
        let ctx = test_ctx(ServeOptions::default());
        let mut conn = ConnState {
            readers: std::collections::HashMap::new(),
        };
        assert_eq!(line(&ctx, &mut conn, "PING"), "OK pong");
        let reply = line(&ctx, &mut conn, "METRICS");
        let (head, body) = reply.split_once('\n').expect("framed");
        let k: usize = head
            .strip_prefix("OK ")
            .expect("ok")
            .parse()
            .expect("count");
        assert_eq!(body.lines().count(), k, "{reply:?}");
        assert!(body.contains("\"schema\": \"minskew-obs/v1\""), "{body:?}");
        let text = line(&ctx, &mut conn, "METRICS text");
        assert!(text.starts_with("OK "), "{text:?}");
        if minskew_obs::enabled() {
            // Under `minskew-obs/noop` the registries stay empty; the verb
            // still frames a valid (schema-only) document.
            assert!(body.contains("serve.verb.ping"), "{body:?}");
            assert!(text.contains("serve.requests"), "{text:?}");
        }
        assert_eq!(line(&ctx, &mut conn, "CREATE t"), "OK created t");
        assert!(
            line(&ctx, &mut conn, "METRICS t").starts_with("OK "),
            "table registry"
        );
        assert!(line(&ctx, &mut conn, "METRICS ghost").starts_with("ERR 2 "));
        assert!(line(&ctx, &mut conn, "METRICS t xml").starts_with("ERR 2 "));
    }

    #[test]
    fn bare_stats_reports_request_latency_quantiles() {
        let ctx = test_ctx(ServeOptions::default());
        let mut conn = ConnState {
            readers: std::collections::HashMap::new(),
        };
        assert_eq!(line(&ctx, &mut conn, "PING"), "OK pong");
        let stats = line(&ctx, &mut conn, "STATS");
        assert!(stats.starts_with("OK {\"tables\":0,"), "{stats:?}");
        assert!(stats.contains("\"request_ns\":{\"count\":"), "{stats:?}");
        assert!(stats.contains("\"p50\":"), "{stats:?}");
        assert!(stats.contains("\"p95\":"), "{stats:?}");
        assert!(stats.contains("\"p99\":"), "{stats:?}");
    }
}
