//! Lock-free reader handles over a table's published snapshots.

use std::sync::Arc;

use minskew_core::EstimateError;
use minskew_geom::Rect;

use crate::cache::{cache_key, QueryCache};
use crate::publish::{
    CacheDisposition, EstimateScratch, EstimateTrace, SnapshotCell, TableSnapshot,
};

/// A lock-free serving handle for one table, obtained via
/// [`crate::SpatialTable::reader`].
///
/// A reader never takes the table's serving lock and never blocks on a
/// writer: each estimate loads the currently published [`TableSnapshot`]
/// from the table's [`SnapshotCell`] (a few nanoseconds; see the
/// publication protocol in [`crate::publish`]) and computes against that
/// immutable view. Every value it returns is therefore **exactly** the
/// value [`crate::SpatialTable::estimate`] would return against the same
/// publication — old snapshot or new, never a mixture.
///
/// Readers carry their own scratch buffers and their own query-result
/// cache. The cache is keyed on the snapshot generation: when a load
/// observes a new generation, the cache is flushed *before* any probe, so
/// a cache hit can never serve an estimate computed under superseded
/// statistics. That makes cache invalidation atomic with snapshot
/// publication by construction.
#[derive(Debug)]
pub struct SpatialReader {
    cell: Arc<SnapshotCell<TableSnapshot>>,
    scratch: EstimateScratch,
    cache: QueryCache,
    /// Generation the cache's entries were filled under.
    generation: u64,
    /// Per-shard routed-query totals of the most recent batch; see
    /// [`SpatialReader::batch_shard_routing`].
    batch_routed: Vec<u64>,
}

/// Error from [`SpatialReader::try_estimate_batch`]: the first offending
/// query (in request order) and why it was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchQueryError {
    /// Zero-based index of the failing query in the request batch.
    pub index: usize,
    /// The underlying rejection.
    pub error: EstimateError,
}

impl std::fmt::Display for BatchQueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query {}: {}", self.index, self.error)
    }
}

impl std::error::Error for BatchQueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

impl SpatialReader {
    /// Creates a reader over `cell` with a query cache of
    /// `cache_capacity` entries (`0` disables caching).
    pub fn new(cell: Arc<SnapshotCell<TableSnapshot>>, cache_capacity: usize) -> SpatialReader {
        SpatialReader {
            cell,
            scratch: EstimateScratch::new(),
            cache: QueryCache::new(cache_capacity),
            generation: 0,
            batch_routed: Vec::new(),
        }
    }

    /// Estimated result size for `query` against the latest published
    /// snapshot (`0.0` for non-finite queries, like
    /// [`crate::SpatialTable::estimate`]).
    pub fn estimate(&mut self, query: &Rect) -> f64 {
        self.try_estimate(query).unwrap_or(0.0)
    }

    /// Estimated result size for `query`, rejecting non-finite queries.
    pub fn try_estimate(&mut self, query: &Rect) -> Result<f64, EstimateError> {
        if !query.is_finite() {
            return Err(EstimateError::NonFiniteQuery);
        }
        let snapshot = self.cell.load();
        if snapshot.generation() != self.generation {
            // New publication: every cached value is potentially stale.
            // Flushing here — on the load that first observes the new
            // generation, before any probe — is what makes the flush
            // atomic with publication.
            self.cache.invalidate();
            self.generation = snapshot.generation();
        }
        self.scratch.used_router = false;
        let key = cache_key(query);
        if let Some(cached) = self.cache.get(&key) {
            return Ok(cached);
        }
        let value = snapshot.estimate(query, &mut self.scratch);
        self.cache.insert(key, value);
        Ok(value)
    }

    /// [`SpatialReader::try_estimate`] with the evidence attached: the
    /// trace's headline estimate is bit-identical to what `try_estimate`
    /// would return for the same query against the same snapshot (EXPLAIN
    /// recomputes through the identical serving path; the cache's
    /// coherence contract pins a would-be hit to the same bits). The
    /// reported cache disposition is what `try_estimate` *would* have
    /// done; EXPLAIN itself never inserts, so tracing a query does not
    /// evict serving entries.
    pub fn try_explain(&mut self, query: &Rect) -> Result<EstimateTrace, EstimateError> {
        if !query.is_finite() {
            return Err(EstimateError::NonFiniteQuery);
        }
        let snapshot = self.cell.load();
        if snapshot.generation() != self.generation {
            self.cache.invalidate();
            self.generation = snapshot.generation();
        }
        self.scratch.used_router = false;
        let cached = self.cache.get(&cache_key(query)).is_some();
        let mut trace = snapshot.explain(query, &mut self.scratch);
        trace.cache = if self.cache.capacity() == 0 {
            CacheDisposition::Bypassed
        } else if cached {
            CacheDisposition::Hit
        } else {
            CacheDisposition::Miss
        };
        Ok(trace)
    }

    /// Estimated result sizes for a batch of queries (`0.0` for any
    /// non-finite query, like [`SpatialReader::estimate`]).
    pub fn estimate_batch(&mut self, queries: &[Rect]) -> Vec<f64> {
        match self.try_estimate_batch(queries) {
            Ok(values) => values,
            Err(_) => {
                // Mirror the lenient single-query path: estimate what is
                // finite, answer `0.0` for what is not.
                queries.iter().map(|q| self.estimate(q)).collect()
            }
        }
    }

    /// Estimated result sizes for a batch of queries, rejecting the batch
    /// on the first (request-order) non-finite query.
    ///
    /// The whole batch is served against **one** snapshot load — a mid-batch
    /// publication cannot split the batch across generations — and is
    /// evaluated in Morton order of the query centres
    /// ([`minskew_core::morton_schedule`]) so consecutive estimates touch
    /// neighbouring index cells and SoA cache lines. Results are returned
    /// in request order, and every value is bit-identical to what a
    /// request-order [`SpatialReader::try_estimate`] loop against the same
    /// snapshot would produce: each estimate is independent, and the
    /// reader's query cache stores exact previously returned values keyed
    /// by query bits, so probe order cannot change any answer.
    ///
    /// Per-shard routing totals for the batch are available afterwards via
    /// [`SpatialReader::batch_shard_routing`].
    pub fn try_estimate_batch(&mut self, queries: &[Rect]) -> Result<Vec<f64>, BatchQueryError> {
        if let Some(index) = queries.iter().position(|q| !q.is_finite()) {
            return Err(BatchQueryError {
                index,
                error: EstimateError::NonFiniteQuery,
            });
        }
        let snapshot = self.cell.load();
        if snapshot.generation() != self.generation {
            self.cache.invalidate();
            self.generation = snapshot.generation();
        }
        self.batch_routed.clear();
        let order = minskew_core::morton_schedule(queries);
        let mut out = vec![0.0f64; queries.len()];
        for &i in &order {
            let query = &queries[i as usize];
            self.scratch.used_router = false;
            let key = cache_key(query);
            let value = if let Some(cached) = self.cache.get(&key) {
                cached
            } else {
                let value = snapshot.estimate(query, &mut self.scratch);
                self.cache.insert(key, value);
                value
            };
            if let Some(shards) = self.scratch.routed_shards() {
                if self.batch_routed.len() < shards.len() {
                    self.batch_routed.resize(shards.len(), 0);
                }
                for (slot, &hit) in self.batch_routed.iter_mut().zip(shards) {
                    *slot += u64::from(hit);
                }
            }
            out[i as usize] = value;
        }
        Ok(out)
    }

    /// Per-shard routed-query totals of the most recent
    /// [`SpatialReader::try_estimate_batch`] (empty for unsharded
    /// statistics, cache-served batches, or before any batch).
    pub fn batch_shard_routing(&self) -> &[u64] {
        &self.batch_routed
    }

    /// The latest published snapshot (what the next estimate will serve
    /// against).
    pub fn snapshot(&self) -> Arc<TableSnapshot> {
        self.cell.load()
    }

    /// Generation of the snapshot the most recent estimate ran against
    /// (`0` before any estimate).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Shard-routing decisions of the most recent estimate, when it was
    /// computed through the partition router (`None` after a cache hit,
    /// for unsharded statistics, or for the no-stats fallback).
    pub fn routed_shards(&self) -> Option<&[bool]> {
        self.scratch.routed_shards()
    }

    /// `(hits, misses)` of this reader's private query cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits(), self.cache.misses())
    }
}

impl Clone for SpatialReader {
    /// Clones the subscription, not the state: the clone shares the
    /// publication cell but starts with fresh scratch and an empty cache
    /// (sized like the original), so clones can be handed to other threads.
    fn clone(&self) -> SpatialReader {
        SpatialReader::new(self.cell.clone(), self.cache.capacity())
    }
}
