//! Lock-free statistics publication: an epoch/two-slot cell that installs
//! immutable `Arc`-published table snapshots, so readers never block on a
//! writer and never observe a half-installed histogram.
//!
//! # The publication protocol
//!
//! [`SnapshotCell`] is a hand-rolled arc-swap (no external crates, no
//! `unsafe`): an atomic epoch plus two slots, each a `Mutex<Arc<T>>`.
//!
//! * **Readers** load the epoch with `Acquire`, lock the *current* slot
//!   (`epoch & 1`), clone the `Arc`, and drop the lock — a few nanoseconds,
//!   and never a lock the writer is holding for the current epoch.
//! * **The writer** (serialized by its own mutex) writes the new `Arc` into
//!   the *inactive* slot, then flips the epoch with `Release`. Readers that
//!   loaded the old epoch finish against the complete old snapshot; readers
//!   that load the new epoch see the complete new one. There is no state in
//!   between: the only shared mutation is an `Arc` pointer swap performed
//!   under the slot's mutex, so an estimate is always computed against
//!   exactly one fully-built [`TableSnapshot`].
//!
//! A reader can contend with the writer only if it stalls between the epoch
//! load and the slot lock for a *full* publication cycle — and even then it
//! merely waits for a pointer store, never for statistics construction
//! (histograms are built before `store` is called).
//!
//! # What a snapshot carries
//!
//! [`TableSnapshot`] is everything the serving path needs: the live row
//! count (for clamping), the fallback MBR (for never-analyzed tables), the
//! sharded statistics, and two monotonic counters — `generation` (bumped by
//! every publication; readers key their query caches on it, which makes
//! cache flush atomic with publication *by construction*) and `stats_era`
//! (bumped only by statistics installs; the accuracy reservoir is keyed on
//! it so row churn does not discard the sample).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use minskew_core::{IndexScratch, ShardScratch, ShardedHistogram};
use minskew_geom::Rect;

/// Reusable serving scratch: the bucket-index scratch plus the shard
/// router's scratch, so every estimate entry point is allocation-free once
/// warm regardless of which path the statistics take.
#[derive(Debug, Clone, Default)]
pub struct EstimateScratch {
    pub(crate) index: IndexScratch,
    pub(crate) shard: ShardScratch,
    /// `true` when the most recent estimate went through the shard router
    /// (so [`EstimateScratch::shard`]'s routing table is meaningful).
    pub(crate) used_router: bool,
}

impl EstimateScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> EstimateScratch {
        EstimateScratch::default()
    }

    /// The shard-routing decisions of the most recent estimate, when it
    /// went through the partition router (`None` for unsharded statistics,
    /// the no-stats fallback, or before any estimate).
    pub fn routed_shards(&self) -> Option<&[bool]> {
        self.used_router.then(|| self.shard.routed())
    }
}

/// An immutable, fully-built view of a table's serving state, published
/// atomically via [`SnapshotCell`]. See the module docs.
#[derive(Debug)]
pub struct TableSnapshot {
    generation: u64,
    stats_era: u64,
    live: usize,
    /// Index MBR at publication time (`None` when the table was empty);
    /// used only by the never-analyzed fallback estimate.
    mbr: Option<Rect>,
    stats: Option<Arc<ShardedHistogram>>,
}

impl TableSnapshot {
    pub(crate) fn new(
        generation: u64,
        stats_era: u64,
        live: usize,
        mbr: Option<Rect>,
        stats: Option<Arc<ShardedHistogram>>,
    ) -> TableSnapshot {
        TableSnapshot {
            generation,
            stats_era,
            live,
            mbr,
            stats,
        }
    }

    /// Monotonic publication counter (every mutation publishes).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Monotonic statistics-install counter (only `ANALYZE`/loads bump it).
    pub fn stats_era(&self) -> u64 {
        self.stats_era
    }

    /// Live rows at publication time.
    pub fn live(&self) -> usize {
        self.live
    }

    /// The published sharded statistics, if `ANALYZE` has run.
    pub fn stats(&self) -> Option<&ShardedHistogram> {
        self.stats.as_deref()
    }

    /// Shard count of the published statistics (1 when unsharded or when
    /// no statistics are installed).
    pub fn num_shards(&self) -> usize {
        self.stats.as_ref().map_or(1, |s| s.num_shards())
    }

    /// The raw (unclamped) estimate against this snapshot. All serving
    /// entry points — the table's locked path, every lock-free reader, the
    /// network front-end — funnel here, so they agree bit for bit.
    pub(crate) fn estimate_raw(&self, query: &Rect, scratch: &mut EstimateScratch) -> f64 {
        match &self.stats {
            Some(stats) if stats.num_shards() > 1 => {
                scratch.used_router = true;
                stats.estimate_count_sharded(query, &mut scratch.shard)
            }
            Some(stats) => {
                scratch.used_router = false;
                stats
                    .histogram()
                    .estimate_count_indexed(query, &mut scratch.index)
            }
            None => {
                scratch.used_router = false;
                // Planner fallback: treat the whole table as one bucket
                // covering the index MBR (a DBMS guesses without stats too).
                let (live, Some(mbr)) = (self.live, self.mbr) else {
                    return 0.0;
                };
                if live == 0 {
                    return 0.0;
                }
                let frac = if mbr.area() > 0.0 {
                    query.intersection_area(&mbr) / mbr.area()
                } else if query.intersects(&mbr) {
                    1.0
                } else {
                    0.0
                };
                live as f64 * frac
            }
        }
    }

    /// The clamped estimate for a query already validated finite: raw
    /// estimate, then clamp to `[0, N]` against this snapshot's row count.
    pub fn estimate(&self, query: &Rect, scratch: &mut EstimateScratch) -> f64 {
        let raw = self.estimate_raw(query, scratch);
        if raw.is_finite() {
            raw.clamp(0.0, self.live as f64)
        } else {
            0.0
        }
    }

    /// [`TableSnapshot::estimate`] with the evidence attached. The headline
    /// number is produced by *calling the serving path itself*
    /// ([`TableSnapshot::estimate_raw`] plus the identical clamp), so it is
    /// bit-identical to what `ESTIMATE` would have returned by
    /// construction. The per-bucket breakdown then comes from the kernel's
    /// explained scan over the unsharded histogram view — pinned
    /// bit-identical to both the unsharded and the routed path by the
    /// kernel and sharded differential suites.
    pub fn explain(&self, query: &Rect, scratch: &mut EstimateScratch) -> EstimateTrace {
        let raw = self.estimate_raw(query, scratch);
        let estimate = if raw.is_finite() {
            raw.clamp(0.0, self.live as f64)
        } else {
            0.0
        };
        let path = match &self.stats {
            Some(stats) if stats.num_shards() > 1 => EstimatePath::Sharded {
                shards: stats.num_shards(),
            },
            Some(_) => EstimatePath::Indexed,
            None => EstimatePath::Fallback,
        };
        let detail = self.stats.as_ref().map(|s| {
            s.histogram()
                .estimate_count_explained(query, &mut scratch.index)
        });
        EstimateTrace {
            estimate,
            raw,
            clamped: raw.to_bits() != estimate.to_bits(),
            path,
            generation: self.generation,
            stats_era: self.stats_era,
            live: self.live,
            cache: CacheDisposition::Bypassed,
            detail,
        }
    }
}

/// Which serving path computed an estimate (see
/// [`TableSnapshot::estimate_raw`]'s three-way dispatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatePath {
    /// Partition-routed sharded statistics (bit-identical to the unsharded
    /// fold; see the `shard` module).
    Sharded {
        /// Shard count of the published statistics.
        shards: usize,
    },
    /// The unsharded block-pruned kernel path.
    Indexed,
    /// The never-analyzed MBR-fraction fallback.
    Fallback,
}

impl EstimatePath {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            EstimatePath::Sharded { .. } => "sharded",
            EstimatePath::Indexed => "indexed",
            EstimatePath::Fallback => "fallback",
        }
    }
}

/// What the query cache would have done with this query at the entry point
/// that produced a trace. EXPLAIN always recomputes (the breakdown needs
/// the scan), but reports whether the serving path would have answered from
/// cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheDisposition {
    /// The query's key was resident: `ESTIMATE` would have served the
    /// cached value (pinned bit-identical to the recomputation by the
    /// cache's coherence contract).
    Hit,
    /// The key was absent: `ESTIMATE` would have computed, as EXPLAIN did.
    Miss,
    /// The entry point has no cache (snapshot-level explain) or the cache
    /// is disabled.
    Bypassed,
}

impl CacheDisposition {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            CacheDisposition::Hit => "hit",
            CacheDisposition::Miss => "miss",
            CacheDisposition::Bypassed => "bypassed",
        }
    }
}

/// A traced estimate: the exact serving-path result plus everything an
/// operator needs to see why it came out that way. Produced by
/// [`TableSnapshot::explain`] (and the reader/table/server surfaces built
/// on it); named `EstimateTrace` to stay clear of the planner's
/// [`crate::Explain`].
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateTrace {
    /// The clamped estimate — bit-identical to what
    /// [`TableSnapshot::estimate`] returns for the same query.
    pub estimate: f64,
    /// The raw pre-clamp fold result.
    pub raw: f64,
    /// `true` when clamping (or the non-finite guard) changed the raw
    /// value.
    pub clamped: bool,
    /// Which serving path computed it.
    pub path: EstimatePath,
    /// Publication generation of the snapshot that served it.
    pub generation: u64,
    /// Statistics era of that snapshot.
    pub stats_era: u64,
    /// Live rows the clamp was taken against.
    pub live: usize,
    /// What the query cache at the traced entry point would have done.
    pub cache: CacheDisposition,
    /// The kernel's per-bucket breakdown (`None` when the fallback path
    /// served — there are no buckets to blame).
    pub detail: Option<minskew_core::EstimateExplain>,
}

/// The epoch/two-slot publication cell. See the module docs for the
/// protocol and its torn-read-freedom argument.
#[derive(Debug)]
pub struct SnapshotCell<T> {
    epoch: AtomicU64,
    /// Serializes writers so concurrent `store`s cannot race the epoch
    /// flip. Readers never touch this lock.
    writer: Mutex<()>,
    slots: [Mutex<Arc<T>>; 2],
}

impl<T> SnapshotCell<T> {
    /// Creates a cell publishing `initial`.
    pub fn new(initial: Arc<T>) -> SnapshotCell<T> {
        SnapshotCell {
            epoch: AtomicU64::new(0),
            writer: Mutex::new(()),
            slots: [Mutex::new(initial.clone()), Mutex::new(initial)],
        }
    }

    /// The currently published value. Never blocks on a writer installing
    /// the next value (the writer works in the other slot), and always
    /// returns a complete, fully-built `T`.
    pub fn load(&self) -> Arc<T> {
        let epoch = self.epoch.load(Ordering::Acquire);
        self.slots[(epoch & 1) as usize]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Publishes `value`: writes it into the inactive slot, then flips the
    /// epoch. Readers observe either the previous value or `value`, never
    /// a mixture.
    pub fn store(&self, value: Arc<T>) {
        let _writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let epoch = self.epoch.load(Ordering::Relaxed);
        *self.slots[((epoch + 1) & 1) as usize]
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = value;
        self.epoch.store(epoch + 1, Ordering::Release);
    }

    /// Number of publications so far (the current epoch).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn load_returns_latest_store() {
        let cell = SnapshotCell::new(Arc::new(0u64));
        assert_eq!(*cell.load(), 0);
        for i in 1..10 {
            cell.store(Arc::new(i));
            assert_eq!(*cell.load(), i);
            assert_eq!(cell.epoch(), i);
        }
    }

    #[test]
    fn concurrent_readers_only_see_complete_values() {
        // Publish (k, k * 3) pairs; a torn read would pair mismatched
        // halves. Readers assert the invariant while the writer spins.
        let cell = Arc::new(SnapshotCell::new(Arc::new((0u64, 0u64))));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let v = cell.load();
                        assert_eq!(v.1, v.0 * 3, "torn snapshot observed");
                        assert!(v.0 >= last, "publication went backwards");
                        last = v.0;
                    }
                })
            })
            .collect();
        for k in 1..=2_000u64 {
            cell.store(Arc::new((k, k * 3)));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader panicked");
        }
        assert_eq!(cell.epoch(), 2_000);
    }
}
