//! Durable statistics snapshots for [`SpatialTable`].
//!
//! A snapshot is the table's optimizer statistics sealed in the
//! checksummed container of [`minskew_core::snapshot`] and installed on
//! disk through the crash-safe atomic protocol of
//! [`minskew_data::atomic`]. This module wires the two together and — the
//! part that makes it *robust* rather than merely persistent — routes every
//! possible corruption into the engine's degradation ladder:
//!
//! * [`SpatialTable::save_snapshot`] — encode, checksum, install
//!   atomically (temp + fsync + rename + dir fsync, bounded retry).
//! * [`SpatialTable::try_load_snapshot`] — strict: a corrupt file is a
//!   typed error and nothing changes.
//! * [`SpatialTable::load_snapshot`] — graceful: a corrupt file is
//!   **quarantined** (renamed aside so the next load cannot trip over it),
//!   the table rebuilds statistics from its live rows via the PR 1
//!   degradation ladder, and the outcome is recorded in
//!   [`StatsDiagnostics`] and the `engine.snapshot.*` metrics. Estimates
//!   stay available and clamped to `[0, N]` through the whole cycle.

use std::path::{Path, PathBuf};

use minskew_core::{FormatVersion, SnapshotError, SnapshotInfo, SpatialHistogram};
use minskew_data::atomic::{write_atomic, AtomicWriteError};
use minskew_obs::Stopwatch;

use crate::table::{SpatialTable, StatsDiagnostics, StatsFallback};

/// Error from the strict snapshot I/O paths.
#[derive(Debug)]
pub enum SnapshotIoError {
    /// The table has no statistics to save (`ANALYZE` never ran).
    NoStats,
    /// Reading the snapshot file failed at the filesystem level.
    Io(std::io::Error),
    /// Writing the snapshot failed (stage and attempt count inside).
    Write(AtomicWriteError),
    /// The file's bytes fail the container's integrity checks.
    Corrupt(SnapshotError),
}

impl std::fmt::Display for SnapshotIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotIoError::NoStats => {
                f.write_str("table has no statistics to snapshot (run ANALYZE first)")
            }
            SnapshotIoError::Io(e) => write!(f, "snapshot io: {e}"),
            SnapshotIoError::Write(e) => write!(f, "snapshot write: {e}"),
            SnapshotIoError::Corrupt(e) => write!(f, "corrupt snapshot: {e}"),
        }
    }
}

impl std::error::Error for SnapshotIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotIoError::NoStats => None,
            SnapshotIoError::Io(e) => Some(e),
            SnapshotIoError::Write(e) => Some(e),
            SnapshotIoError::Corrupt(e) => Some(e),
        }
    }
}

/// Outcome of a graceful [`SpatialTable::load_snapshot`].
#[derive(Debug)]
#[non_exhaustive]
pub struct SnapshotLoadReport {
    /// `true` when the snapshot's statistics were installed verbatim;
    /// `false` when recovery rebuilt statistics instead.
    pub installed: bool,
    /// Container metadata, when the file decoded (including legacy files).
    pub info: Option<SnapshotInfo>,
    /// Where the corrupt file was moved, when quarantine succeeded.
    pub quarantined: Option<PathBuf>,
    /// The statistics diagnostics after the load — on recovery this shows
    /// the ladder rung ([`StatsFallback::RebuiltFromData`] or
    /// [`StatsFallback::Uniform`]) and the triggering error.
    pub diagnostics: StatsDiagnostics,
}

/// Moves `path` aside to the first free `<path>.corrupt-N` name so the
/// damaged bytes are preserved for forensics but can never be loaded again
/// by accident. Returns `None` when the rename fails (e.g. a read-only
/// directory) — recovery proceeds regardless.
fn quarantine(path: &Path) -> Option<PathBuf> {
    let name = path.file_name()?.to_string_lossy().into_owned();
    for n in 1..10_000u32 {
        let candidate = path.with_file_name(format!("{name}.corrupt-{n}"));
        if candidate.exists() {
            continue;
        }
        if std::fs::rename(path, &candidate).is_ok() {
            return Some(candidate);
        }
        return None;
    }
    None
}

impl SpatialTable {
    /// Saves the current statistics to `path` as a durable snapshot.
    ///
    /// The bytes are the checksummed container of
    /// [`SpatialHistogram::to_snapshot_bytes`], installed with the atomic
    /// temp + fsync + rename protocol: a crash at any point leaves `path`
    /// holding either the complete previous snapshot or the complete new
    /// one, never a torn mix.
    pub fn save_snapshot(&self, path: &Path) -> Result<SnapshotInfo, SnapshotIoError> {
        let stats = self.stats().ok_or(SnapshotIoError::NoStats)?;
        let mut clock = Stopwatch::start();
        let bytes = stats.to_snapshot_bytes();
        write_atomic(path, &bytes).map_err(SnapshotIoError::Write)?;
        self.note_snapshot("save", clock.lap());
        // Encoding is total, so describing our own bytes cannot fail.
        minskew_core::verify_snapshot(&bytes).map_err(SnapshotIoError::Corrupt)
    }

    /// Loads a snapshot strictly: the statistics are installed only if the
    /// file passes every integrity check. On any error — unreadable file,
    /// bad checksum, malformed payload — nothing changes: the previous
    /// statistics (if any) stay in force and the file is left where it is.
    ///
    /// Legacy bare-codec files (the pre-container format) are accepted and
    /// reported as [`FormatVersion::Legacy`] in the returned info.
    pub fn try_load_snapshot(&mut self, path: &Path) -> Result<SnapshotInfo, SnapshotIoError> {
        let mut clock = Stopwatch::start();
        let bytes = std::fs::read(path).map_err(SnapshotIoError::Io)?;
        let (hist, info) =
            SpatialHistogram::from_snapshot_bytes(&bytes).map_err(SnapshotIoError::Corrupt)?;
        self.install_snapshot_stats(hist, &info);
        self.note_snapshot("load", clock.lap());
        Ok(info)
    }

    /// Loads a snapshot gracefully: corruption is survived, not returned.
    ///
    /// On a healthy file this is [`SpatialTable::try_load_snapshot`]. On a
    /// corrupt or unreadable file the engine:
    ///
    /// 1. **quarantines** the file (rename to `<path>.corrupt-N`) so the
    ///    damaged bytes are kept for forensics but never reloaded,
    /// 2. walks the degradation ladder — rebuild from the live rows, or
    ///    the uniform floor when even that fails — exactly as
    ///    [`SpatialTable::load_stats`] does for corrupt summaries,
    /// 3. records the outcome in [`StatsDiagnostics`] (fallback rung,
    ///    `last_error`) and the `engine.snapshot.*` metrics.
    ///
    /// Estimates remain available and clamped to `[0, N]` throughout.
    pub fn load_snapshot(&mut self, path: &Path) -> SnapshotLoadReport {
        let mut clock = Stopwatch::start();
        let decoded = std::fs::read(path)
            .map_err(SnapshotIoError::Io)
            .and_then(|bytes| {
                SpatialHistogram::from_snapshot_bytes(&bytes).map_err(SnapshotIoError::Corrupt)
            });
        match decoded {
            Ok((hist, info)) => {
                self.install_snapshot_stats(hist, &info);
                self.note_snapshot("load", clock.lap());
                SnapshotLoadReport {
                    installed: true,
                    info: Some(info),
                    quarantined: None,
                    diagnostics: self.stats_diagnostics(),
                }
            }
            Err(err) => {
                // Quarantine only what exists: an Io error usually means
                // the file is absent, and there is nothing to move.
                let quarantined = if matches!(err, SnapshotIoError::Corrupt(_)) {
                    self.bump_snapshot_counter("engine.snapshot.corrupt");
                    let moved = quarantine(path);
                    if moved.is_some() {
                        self.bump_snapshot_counter("engine.snapshot.quarantined");
                    }
                    moved
                } else {
                    None
                };
                // The recovery rung: rebuild from the rows we still have.
                // `analyze` is itself degradation-protected, so this always
                // installs *something* (uniform floor at worst).
                self.analyze();
                self.stamp_recovery(&err.to_string());
                self.note_snapshot("recover", clock.lap());
                SnapshotLoadReport {
                    installed: false,
                    info: None,
                    quarantined,
                    diagnostics: self.stats_diagnostics(),
                }
            }
        }
    }

    /// Installs decoded snapshot statistics with clean diagnostics and
    /// bumps the per-format load counter.
    fn install_snapshot_stats(&mut self, hist: SpatialHistogram, info: &SnapshotInfo) {
        self.install_stats(
            hist,
            StatsDiagnostics {
                attempts: 1,
                ..StatsDiagnostics::default()
            },
        );
        self.bump_snapshot_counter(match info.version {
            FormatVersion::Container => "engine.snapshot.load_ok",
            FormatVersion::Legacy => "engine.snapshot.load_legacy",
        });
    }

    /// Stamps the diagnostics after a recovery rebuild, preserving a deeper
    /// ladder rung when `analyze` already fell to the uniform floor.
    fn stamp_recovery(&mut self, trigger: &str) {
        self.diagnostics.degraded = true;
        self.diagnostics.attempts += 1;
        if self.diagnostics.fallback != StatsFallback::Uniform {
            self.diagnostics.fallback = StatsFallback::RebuiltFromData;
        }
        self.diagnostics.last_error = Some(trigger.to_owned());
    }

    /// Records one snapshot operation: an `engine.snapshot.<op>` counter
    /// plus its latency histogram.
    fn note_snapshot(&self, op: &str, ns: u64) {
        if !self.options.metrics || !minskew_obs::enabled() {
            return;
        }
        self.registry
            .counter(&format!("engine.snapshot.{op}"))
            .inc();
        self.registry
            .histogram(&format!("engine.snapshot.{op}_ns"))
            .record(ns);
    }

    /// Bumps a snapshot counter, respecting the metrics switch.
    fn bump_snapshot_counter(&self, name: &str) {
        if self.options.metrics && minskew_obs::enabled() {
            self.registry.counter(name).inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableOptions;
    use minskew_datagen::charminar_with;
    use minskew_geom::Rect;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("minskew-persist-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    fn analyzed_table(n: usize, seed: u64) -> SpatialTable {
        let mut t = SpatialTable::new(TableOptions::default());
        for r in charminar_with(n, seed).rects() {
            t.insert(*r);
        }
        t.analyze();
        t
    }

    #[test]
    fn snapshot_round_trip_is_byte_identical() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("stats.snap");
        let t = analyzed_table(2_000, 21);
        let info = t.save_snapshot(&path).expect("save");
        assert_eq!(info.version, FormatVersion::Container);
        assert_eq!(info.technique, "Min-Skew");

        let mut fresh = SpatialTable::new(TableOptions::default());
        for r in charminar_with(2_000, 21).rects() {
            fresh.insert(*r);
        }
        let loaded = fresh.try_load_snapshot(&path).expect("load");
        assert_eq!(loaded.buckets, info.buckets);
        assert_eq!(
            fresh.stats().expect("installed").to_bytes(),
            t.stats().expect("analyzed").to_bytes(),
            "snapshot round trip must preserve the statistics bit for bit"
        );
        let d = fresh.stats_diagnostics();
        assert!(!d.degraded);
        assert_eq!(d.fallback, StatsFallback::None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_without_stats_is_a_typed_error() {
        let dir = tmp_dir("nostats");
        let t = SpatialTable::new(TableOptions::default());
        let err = t.save_snapshot(&dir.join("x.snap")).expect_err("no stats");
        assert!(matches!(err, SnapshotIoError::NoStats));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strict_load_rejects_corruption_and_keeps_previous_stats() {
        let dir = tmp_dir("strict");
        let path = dir.join("stats.snap");
        let mut t = analyzed_table(1_000, 22);
        t.save_snapshot(&path).expect("save");
        let before = t.stats().expect("analyzed").to_bytes();

        let mut bytes = std::fs::read(&path).expect("readable");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).expect("rewrite");

        let err = t.try_load_snapshot(&path).expect_err("corrupt");
        assert!(matches!(err, SnapshotIoError::Corrupt(_)), "{err}");
        assert_eq!(
            t.stats().expect("still installed").to_bytes(),
            before,
            "strict load must not disturb the installed statistics"
        );
        assert!(path.exists(), "strict load must not quarantine");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn graceful_load_quarantines_and_rebuilds() {
        let dir = tmp_dir("graceful");
        let path = dir.join("stats.snap");
        let mut t = analyzed_table(1_500, 23);
        t.save_snapshot(&path).expect("save");
        let mut bytes = std::fs::read(&path).expect("readable");
        bytes.truncate(bytes.len() / 3); // a torn write survivor
        std::fs::write(&path, &bytes).expect("rewrite");

        let report = t.load_snapshot(&path);
        assert!(!report.installed);
        let q = report.quarantined.as_ref().expect("quarantined");
        assert!(q.exists(), "quarantine file must exist");
        assert!(!path.exists(), "original path must be clear");
        assert_eq!(report.diagnostics.fallback, StatsFallback::RebuiltFromData);
        assert!(report
            .diagnostics
            .last_error
            .as_deref()
            .is_some_and(|e| e.contains("corrupt snapshot")));
        // Recovery must leave the table estimating within bounds.
        let est = t.estimate(&Rect::new(0.0, 0.0, 3_000.0, 3_000.0));
        assert!(est.is_finite() && est >= 0.0 && est <= t.len() as f64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn graceful_load_of_missing_file_rebuilds_without_quarantine() {
        let dir = tmp_dir("missing");
        let mut t = analyzed_table(800, 24);
        let report = t.load_snapshot(&dir.join("never-written.snap"));
        assert!(!report.installed);
        assert!(report.quarantined.is_none());
        assert_eq!(report.diagnostics.fallback, StatsFallback::RebuiltFromData);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_bare_codec_file_loads_with_legacy_format_version() {
        let dir = tmp_dir("legacy");
        let path = dir.join("legacy.stats");
        let t = analyzed_table(1_200, 25);
        std::fs::write(&path, t.stats().expect("analyzed").to_bytes()).expect("write legacy");

        let mut fresh = SpatialTable::new(TableOptions::default());
        let info = fresh.try_load_snapshot(&path).expect("legacy decodes");
        assert_eq!(info.version, FormatVersion::Legacy);
        assert_eq!(
            fresh.stats().expect("installed").to_bytes(),
            t.stats().expect("analyzed").to_bytes()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_metrics_count_operations() {
        if !minskew_obs::enabled() {
            return;
        }
        let dir = tmp_dir("metrics");
        let path = dir.join("stats.snap");
        let mut t = analyzed_table(1_000, 26);
        t.save_snapshot(&path).expect("save");
        t.try_load_snapshot(&path).expect("load");
        std::fs::write(&path, b"garbage").expect("corrupt");
        let _ = t.load_snapshot(&path);
        let snap = t.metrics();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or(0)
        };
        assert_eq!(counter("engine.snapshot.save"), 1);
        assert_eq!(counter("engine.snapshot.load"), 1);
        assert_eq!(counter("engine.snapshot.load_ok"), 1);
        assert_eq!(counter("engine.snapshot.corrupt"), 1);
        assert_eq!(counter("engine.snapshot.quarantined"), 1);
        assert_eq!(counter("engine.snapshot.recover"), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
