//! The spatial table: storage, index, statistics, and the execution loop.

use std::sync::{Arc, Mutex, PoisonError};

use minskew_core::{
    build_uniform, try_build_equi_area, try_build_equi_count, try_build_uniform, BuildError,
    EstimateError, MinSkewBuilder, RefineObservation, RefineOptions, RefineReport,
    ShardedHistogram, SpatialEstimator, SpatialHistogram, MAX_SHARDS,
};
use minskew_data::Dataset;
use minskew_geom::Rect;
use minskew_obs::{
    FlightRecorder, FlightTrigger, Gauge, Histogram, QueryRecord, Registry, Stopwatch,
};
use minskew_rtree::{RStarTree, RTreeConfig};

use crate::cache::{cache_key, QueryCache};
use crate::monitor::{AccuracyReport, Reservoir};
use crate::publish::{
    CacheDisposition, EstimateScratch, EstimateTrace, SnapshotCell, TableSnapshot,
};
use crate::reader::SpatialReader;
use crate::{CostModel, Explain, Plan};

/// Stable identifier of a row in a [`SpatialTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(u64);

impl RowId {
    /// The raw id value, for wire protocols and diagnostics.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs a [`RowId`] from [`RowId::raw`]. An id that never came
    /// from an insert is harmless: `get`/`delete` treat it as unknown.
    pub fn from_raw(raw: u64) -> RowId {
        RowId(raw)
    }
}

/// Which statistics technique `ANALYZE` builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StatsTechnique {
    /// Min-Skew (the paper's recommendation) — the default.
    #[default]
    MinSkew,
    /// Equi-Area BSP.
    EquiArea,
    /// Equi-Count BSP.
    EquiCount,
    /// Single-bucket uniformity assumption.
    Uniform,
}

/// How the table repairs drifted statistics when
/// [`SpatialTable::maintain`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaintenanceMode {
    /// Audit only: report drift, never touch the statistics.
    Off,
    /// A drifted (or stale) audit triggers a full re-`ANALYZE` — the
    /// behaviour the engine always had. The default.
    #[default]
    DriftReAnalyze,
    /// A drifted (or stale) audit triggers one bounded online refine step
    /// ([`minskew_core::SpatialHistogram::refine`]): split the
    /// highest-error bucket, merge the lowest-skew adjacent pair, re-fit
    /// counts against the replayed (query, exact) feedback — no data
    /// re-read. Falls back to a full re-`ANALYZE` when there is nothing to
    /// refine (no statistics installed, or no replayed feedback yet).
    OnlineRefine,
}

impl MaintenanceMode {
    /// Stable lowercase label, used in metric names, `Display` output, and
    /// the wire protocol.
    pub fn label(self) -> &'static str {
        match self {
            MaintenanceMode::Off => "off",
            MaintenanceMode::DriftReAnalyze => "reanalyze",
            MaintenanceMode::OnlineRefine => "refine",
        }
    }
}

impl std::fmt::Display for MaintenanceMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for MaintenanceMode {
    type Err = String;

    fn from_str(s: &str) -> Result<MaintenanceMode, String> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Ok(MaintenanceMode::Off),
            "reanalyze" => Ok(MaintenanceMode::DriftReAnalyze),
            "refine" => Ok(MaintenanceMode::OnlineRefine),
            other => Err(format!(
                "unknown maintenance mode {other:?} (expected off, reanalyze, or refine)"
            )),
        }
    }
}

/// The repair a [`SpatialTable::maintain`] pass performed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MaintenanceAction {
    /// No repair was needed (the audit is healthy) or the mode is
    /// [`MaintenanceMode::Off`].
    None,
    /// A full re-`ANALYZE` rebuilt the statistics from the live rows.
    Reanalyzed,
    /// One bounded online refine step repaired the histogram in place from
    /// the replayed feedback.
    Refined(minskew_core::RefineReport),
}

/// The result of one [`SpatialTable::maintain`] pass: the audit that drove
/// the decision plus the repair taken.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct MaintenanceReport {
    /// The accuracy audit (see [`SpatialTable::audit_accuracy`]); `None`
    /// when nothing has been sampled yet.
    pub audit: Option<AccuracyReport>,
    /// The repair performed.
    pub action: MaintenanceAction,
}

impl std::fmt::Display for MaintenanceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.audit {
            Some(audit) => write!(f, "{audit}")?,
            None => f.write_str("accuracy: no sampled queries yet")?,
        }
        match &self.action {
            MaintenanceAction::None => write!(f, "; action: none"),
            MaintenanceAction::Reanalyzed => write!(f, "; action: reanalyzed"),
            MaintenanceAction::Refined(r) => write!(f, "; action: {r}"),
        }
    }
}

/// `ANALYZE` parameters.
#[derive(Debug, Clone, Copy)]
pub struct AnalyzeOptions {
    /// Technique to build.
    pub technique: StatsTechnique,
    /// Bucket budget.
    pub buckets: usize,
    /// Min-Skew grid regions (ignored by the other techniques).
    pub regions: usize,
    /// Min-Skew progressive refinements.
    pub refinements: usize,
}

impl Default for AnalyzeOptions {
    fn default() -> AnalyzeOptions {
        AnalyzeOptions {
            technique: StatsTechnique::MinSkew,
            buckets: 100,
            regions: 10_000,
            refinements: 0,
        }
    }
}

/// Table-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct TableOptions {
    /// Plan-cost constants.
    pub cost_model: CostModel,
    /// Statistics configuration used by [`SpatialTable::analyze`] and by
    /// automatic re-analysis.
    pub analyze: AnalyzeOptions,
    /// When statistics staleness exceeds this fraction, the next plan
    /// triggers an automatic `ANALYZE` first (`None` disables).
    pub auto_analyze_threshold: Option<f64>,
    /// R\*-tree node capacity.
    pub index_fanout: usize,
    /// Worker threads for parallel paths (`ANALYZE`-time Min-Skew
    /// construction, [`SpatialTable::estimate_batch`]). `1` (the default)
    /// keeps every path on the serial reference implementation; `0` means
    /// one worker per available core. Results are bit-identical at every
    /// setting.
    pub threads: usize,
    /// Enables the per-table query-result cache: repeated single-query
    /// estimates with the same rectangle bits are answered from a bounded
    /// LRU instead of re-scanning the histogram. The cache is invalidated
    /// by every mutation (`insert`, `delete`, any statistics install), so a
    /// cached value is always bit-identical to a fresh computation. Batch
    /// estimation bypasses the cache (recorded in
    /// [`StatsDiagnostics::batch_cache_bypass`]). Defaults to `true`.
    pub query_cache: bool,
    /// Capacity of the query-result cache in entries (applied at table
    /// construction or via [`SpatialTable::set_query_cache`]). Defaults to
    /// 1024 (~48 KiB).
    pub query_cache_capacity: usize,
    /// Enables in-process metrics and the online accuracy monitor.
    ///
    /// Instrumentation is **bit-invisible**: every estimate and every
    /// encoded statistics summary is byte-identical whether this is `true`,
    /// `false`, or the `minskew-obs` crate is compiled with its `noop`
    /// feature. The serving-path cost with metrics on is a few plain
    /// integer operations per call plus sampled stage timing (see
    /// [`TableOptions::metrics_sampling`]). Defaults to `true`.
    pub metrics: bool,
    /// Sample one in this many single-query estimates for stage timing
    /// (cache probe → index scan → clamp) and per-technique latency
    /// histograms. Rounded up to a power of two; values `<= 1` time every
    /// call. Unsampled calls never read the clock. Defaults to 256.
    pub metrics_sampling: u32,
    /// Capacity of the accuracy monitor's query reservoir (`0` disables the
    /// monitor). The serving path samples computed queries into the
    /// reservoir; [`SpatialTable::audit_accuracy`] replays them against
    /// exact index counts. Defaults to 256.
    pub accuracy_reservoir: usize,
    /// Average relative error (the paper's §5 metric, `Σ|r−e| / Σr`) above
    /// which [`SpatialTable::audit_accuracy`] reports drift and recommends
    /// re-`ANALYZE`. Defaults to 0.5.
    pub accuracy_drift_threshold: f64,
    /// Number of spatial shards the published statistics are partitioned
    /// into (see [`minskew_core::ShardedHistogram`]). `1` (the default)
    /// serves unsharded. Sharding is a concurrency/locality knob only:
    /// every estimate is **bit-identical** at every shard count.
    pub shards: usize,
    /// How [`SpatialTable::maintain`] repairs drifted statistics. Defaults
    /// to [`MaintenanceMode::DriftReAnalyze`] (the pre-refine behaviour);
    /// [`MaintenanceMode::OnlineRefine`] repairs in place from query
    /// feedback instead of re-reading the data.
    pub maintenance: MaintenanceMode,
    /// Capacity of the table's flight recorder
    /// ([`minskew_obs::FlightRecorder`]): the ring of structured records
    /// for slow / wrong / sampled queries, drained via
    /// [`SpatialTable::flight_recorder`] (or the server's `FLIGHT` verb).
    /// `0` disables recording. Recording is bit-invisible like the rest of
    /// the instrumentation and inert when [`TableOptions::metrics`] is
    /// off. Defaults to 256.
    pub flight_capacity: usize,
    /// Latency (nanoseconds) at or above which a *sampled* estimate is
    /// captured as a `slow` flight record. Only sampled calls read the
    /// clock (see [`TableOptions::metrics_sampling`]), so slow-query
    /// detection rides the sampled path and adds no timing to the
    /// unsampled fast path. `0` disables the slow trigger. Defaults to
    /// 1 ms.
    pub flight_slow_ns: u64,
    /// Relative residual `|exact − estimate| / max(|exact|, 1)` above
    /// which [`SpatialTable::audit_accuracy`]'s replay captures a `wrong`
    /// flight record for the offending query. Non-positive disables the
    /// wrong trigger. Defaults to 1.0 (estimate off by 100%).
    pub flight_residual: f64,
    /// Capture one in this many sampled (timed) estimates as a `sampled`
    /// flight record regardless of latency, so the ring always carries a
    /// baseline of ordinary traffic. `0` disables the sampled trigger.
    /// Defaults to 0.
    pub flight_sample: u32,
}

impl Default for TableOptions {
    fn default() -> TableOptions {
        TableOptions {
            cost_model: CostModel::default(),
            analyze: AnalyzeOptions::default(),
            auto_analyze_threshold: Some(0.2),
            index_fanout: 16,
            threads: 1,
            query_cache: true,
            query_cache_capacity: 1024,
            metrics: true,
            metrics_sampling: 256,
            accuracy_reservoir: 256,
            accuracy_drift_threshold: 0.5,
            shards: 1,
            maintenance: MaintenanceMode::default(),
            flight_capacity: 256,
            flight_slow_ns: 1_000_000,
            flight_residual: 1.0,
            flight_sample: 0,
        }
    }
}

/// How far down the degradation ladder the current statistics sit.
///
/// The engine never refuses to answer an estimate: when the configured
/// statistics build fails, it walks this ladder — degrade the bucket budget
/// to what the data supports, rebuild from the live rows, and finally fall
/// back to the single-bucket uniform assumption of §3.1 — and records where
/// it landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StatsFallback {
    /// The configured technique built at the requested budget.
    #[default]
    None,
    /// The requested bucket count was unreachable; statistics were rebuilt
    /// at the achievable budget.
    DegradedBuckets,
    /// A persisted summary was corrupt or a refresh failed; statistics were
    /// rebuilt from the live rows instead.
    RebuiltFromData,
    /// Every richer build failed; the single-bucket uniform assumption is
    /// in force (the floor of the ladder — always constructible).
    Uniform,
}

impl StatsFallback {
    /// Stable lowercase label, used in metric names and `Display` output.
    fn label(self) -> &'static str {
        match self {
            StatsFallback::None => "none",
            StatsFallback::DegradedBuckets => "degraded_buckets",
            StatsFallback::RebuiltFromData => "rebuilt_from_data",
            StatsFallback::Uniform => "uniform",
        }
    }
}

impl std::fmt::Display for StatsFallback {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Diagnostics for the most recent statistics build or load.
///
/// Marked `#[non_exhaustive]`: construct it with
/// [`SpatialTable::stats_diagnostics`] (or `Default` + struct update),
/// never field-by-field, so new counters can land without breaking callers.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct StatsDiagnostics {
    /// Bucket budget the configuration asked for.
    pub requested_buckets: usize,
    /// Buckets the installed histogram actually has.
    pub achieved_buckets: usize,
    /// `true` whenever the installed statistics are anything less than the
    /// configured technique at the requested budget.
    pub degraded: bool,
    /// Which rung of the degradation ladder produced the statistics.
    pub fallback: StatsFallback,
    /// Build attempts made (1 = first try succeeded).
    pub attempts: usize,
    /// The error that forced degradation, if any.
    pub last_error: Option<String>,
    /// Query-cache hits since the table was created (or the cache was
    /// reconfigured). Counted by [`SpatialTable::estimate`] /
    /// [`SpatialTable::try_estimate`]. Batch traffic never shows up here —
    /// it is tallied separately in [`StatsDiagnostics::batch_queries`] /
    /// [`StatsDiagnostics::batch_cache_bypass`], which is why
    /// `hits + misses` need not equal the total queries served.
    pub cache_hits: u64,
    /// Query-cache misses (lookups that had to compute).
    pub cache_misses: u64,
    /// Times the cache was flushed because a mutation made its entries
    /// potentially stale (only non-empty flushes are counted).
    pub cache_invalidations: u64,
    /// Queries served through [`SpatialTable::estimate_batch`] /
    /// [`SpatialTable::try_estimate_batch`] (which never consult the
    /// cache).
    pub batch_queries: u64,
    /// Of [`StatsDiagnostics::batch_queries`], how many bypassed an
    /// *enabled* query cache — cacheable work the batch path skipped
    /// because its workers use lock-free per-worker scratch instead.
    pub batch_cache_bypass: u64,
}

impl std::fmt::Display for StatsDiagnostics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stats {}/{} buckets (fallback: {}, attempts: {}{})",
            self.achieved_buckets,
            self.requested_buckets,
            self.fallback,
            self.attempts,
            if self.degraded { ", degraded" } else { "" },
        )?;
        write!(
            f,
            "; cache {} hits / {} misses / {} flushes; batch {} queries ({} cache-bypassed)",
            self.cache_hits,
            self.cache_misses,
            self.cache_invalidations,
            self.batch_queries,
            self.batch_cache_bypass,
        )?;
        if let Some(err) = &self.last_error {
            write!(f, "; last error: {err}")?;
        }
        Ok(())
    }
}

/// Per-table serving state: the query-result cache, the reusable index
/// scratch for single-query estimates, and the per-call bookkeeping that is
/// cheap precisely because the serving lock is already held — plain `u64`
/// arithmetic, no atomics, no clock reads. Behind a [`Mutex`] so `&self`
/// estimation stays `Sync` (batch workers use their own scratch and never
/// touch this lock).
#[derive(Debug)]
struct ServingState {
    cache: QueryCache,
    scratch: EstimateScratch,
    /// Publication generation the cache's entries were filled under; a
    /// mismatch with the table's current generation flushes before any
    /// probe, making cache invalidation atomic with snapshot publication
    /// by construction (not by remembering to call a flush).
    seen_generation: u64,
    /// Data era the reservoir's cached exact counts were replayed under.
    /// Row churn advances the table's data era, which invalidates the
    /// cached exact counts (they are no longer exact) but keeps the
    /// sampled queries resident — the workload is as representative as
    /// before, and the sample surviving churn is precisely what lets the
    /// audit *detect* the drift the churn caused. Statistics installs do
    /// not touch the reservoir at all: a refine install must retain the
    /// replayed (query, exact) pairs it was driven by.
    seen_era: u64,
    /// Single-query estimates served (cached or computed).
    calls: u64,
    /// Of `calls`, how many took the sampled stage-timing path.
    sampled: u64,
    /// Batch API invocations.
    batch_calls: u64,
    /// Queries served through the batch APIs.
    batch_queries: u64,
    /// Of `batch_queries`, how many bypassed an enabled query cache.
    batch_bypass: u64,
    /// Accuracy-monitor reservoir of computed (non-cache-hit) queries.
    reservoir: Reservoir,
    /// High-water marks already published into the registry; publication is
    /// delta-based so it can run on every read without double counting.
    published: PublishedCounters,
}

impl ServingState {
    fn new(options: &TableOptions) -> ServingState {
        ServingState {
            cache: QueryCache::new(if options.query_cache {
                options.query_cache_capacity
            } else {
                0
            }),
            scratch: EstimateScratch::new(),
            seen_generation: 0,
            seen_era: 0,
            calls: 0,
            sampled: 0,
            batch_calls: 0,
            batch_queries: 0,
            batch_bypass: 0,
            reservoir: Reservoir::new(if options.metrics {
                options.accuracy_reservoir
            } else {
                0
            }),
            published: PublishedCounters::default(),
        }
    }
}

/// Registry-published high-water marks for the serving counters.
#[derive(Debug, Default)]
struct PublishedCounters {
    calls: u64,
    sampled: u64,
    batch_calls: u64,
    batch_queries: u64,
    batch_bypass: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_invalidations: u64,
}

/// The hot-path latency histograms, resolved once at table construction so
/// sampled calls record through the `Arc` without a registry lookup.
#[derive(Debug)]
struct TableMetrics {
    cache_probe_ns: Arc<Histogram>,
    index_scan_ns: Arc<Histogram>,
    clamp_ns: Arc<Histogram>,
    /// Current publication generation, resolved once so the per-mutation
    /// publish path avoids a registry lookup.
    generation: Arc<Gauge>,
}

impl TableMetrics {
    fn new(registry: &Registry) -> TableMetrics {
        TableMetrics {
            cache_probe_ns: registry.histogram("engine.query.cache_probe_ns"),
            index_scan_ns: registry.histogram("engine.query.index_scan_ns"),
            clamp_ns: registry.histogram("engine.query.clamp_ns"),
            generation: registry.gauge("engine.stats.generation"),
        }
    }
}

/// A spatial table: rows of rectangles with a stable id, an R\*-tree index,
/// and optimizer statistics.
pub struct SpatialTable {
    // (Debug is implemented manually below: the index and serving state
    // are large and uninformative to dump.)
    pub(crate) options: TableOptions,
    rows: Vec<Option<Rect>>, // slot per RowId; None = deleted
    live: usize,
    index: RStarTree<u64>,
    stats: Option<SpatialHistogram>,
    pub(crate) diagnostics: StatsDiagnostics,
    serving: Mutex<ServingState>,
    /// Per-table metrics registry (see [`SpatialTable::metrics`]).
    pub(crate) registry: Registry,
    metrics: TableMetrics,
    /// Monotonic publication counter; bumped by every mutation.
    generation: u64,
    /// Monotonic statistics-install counter; bumped by installs only.
    stats_era: u64,
    /// Monotonic data-churn counter; bumped by row inserts/deletes only.
    /// Keys the validity of the accuracy reservoir's cached exact counts
    /// (see [`ServingState::seen_era`]).
    data_era: u64,
    /// The latest published snapshot (the same `Arc` the cell holds); the
    /// table's own serving path estimates against it so locked and
    /// lock-free readers agree structurally, not by parallel maintenance.
    current: Arc<TableSnapshot>,
    /// The publication cell lock-free readers subscribe to.
    cell: Arc<SnapshotCell<TableSnapshot>>,
    /// The table's flight recorder: slow / wrong / sampled query records
    /// (see [`TableOptions::flight_capacity`]). Shared by `Arc` so the
    /// server can drain it without the table lock.
    flight: Arc<FlightRecorder>,
}

impl std::fmt::Debug for SpatialTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpatialTable")
            .field("live", &self.live)
            .field("rows", &self.rows.len())
            .field("has_stats", &self.stats.is_some())
            .field("generation", &self.generation)
            .field("stats_era", &self.stats_era)
            .field("shards", &self.options.shards)
            .finish_non_exhaustive()
    }
}

impl SpatialTable {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if the options are invalid; use [`SpatialTable::try_new`] to
    /// handle that as an error.
    pub fn new(options: TableOptions) -> SpatialTable {
        match SpatialTable::try_new(options) {
            Ok(table) => table,
            Err(e) => panic!("invalid table options: {e}"),
        }
    }

    /// Creates an empty table, reporting invalid options
    /// ([`TableOptions::index_fanout`] below the R\*-tree minimum, a zero
    /// bucket budget) as errors instead of panicking.
    pub fn try_new(options: TableOptions) -> Result<SpatialTable, BuildError> {
        let config = RTreeConfig::try_with_max_entries(options.index_fanout)
            .map_err(|e| BuildError::InvalidConfig(e.to_string()))?;
        if options.analyze.buckets == 0 {
            return Err(BuildError::ZeroBucketBudget);
        }
        if options.shards == 0 || options.shards > MAX_SHARDS {
            return Err(BuildError::InvalidConfig(format!(
                "shards must be in 1..={MAX_SHARDS}, got {}",
                options.shards
            )));
        }
        let registry = Registry::new();
        let metrics = TableMetrics::new(&registry);
        let current = Arc::new(TableSnapshot::new(0, 0, 0, None, None));
        let cell = Arc::new(SnapshotCell::new(current.clone()));
        // Metrics off ⇒ no recording at all; sizing the ring to zero makes
        // that structural instead of a per-call check.
        let flight = Arc::new(FlightRecorder::new(if options.metrics {
            options.flight_capacity
        } else {
            0
        }));
        Ok(SpatialTable {
            rows: Vec::new(),
            live: 0,
            index: RStarTree::new(config),
            stats: None,
            diagnostics: StatsDiagnostics::default(),
            serving: Mutex::new(ServingState::new(&options)),
            registry,
            metrics,
            generation: 0,
            stats_era: 0,
            data_era: 0,
            current,
            cell,
            flight,
            options,
        })
    }

    /// Publishes the table's current serving state as an immutable
    /// snapshot: readers obtained via [`SpatialTable::reader`] observe it
    /// atomically (the whole snapshot or the previous one, never a mix).
    /// Called by every path that changes what an estimate could return.
    fn publish(&mut self) {
        self.generation += 1;
        let stats = self
            .stats
            .as_ref()
            .map(|h| Arc::new(ShardedHistogram::build(h.clone(), self.options.shards)));
        let mbr = (self.live > 0).then(|| self.index.mbr());
        let snapshot = Arc::new(TableSnapshot::new(
            self.generation,
            self.stats_era,
            self.live,
            mbr,
            stats,
        ));
        self.current = snapshot.clone();
        self.cell.store(snapshot);
        if self.options.metrics && minskew_obs::enabled() {
            self.metrics.generation.set(self.generation as f64);
        }
    }

    /// A lock-free reader handle over this table's published snapshots:
    /// `estimate` on the handle never takes the table's serving lock and
    /// never blocks on `ANALYZE`/mutations, yet is bit-identical to
    /// [`SpatialTable::estimate`] against the same publication. Readers
    /// carry their own scratch and their own generation-keyed query cache;
    /// any number may run concurrently with each other and with a writer.
    pub fn reader(&self) -> SpatialReader {
        SpatialReader::new(
            self.cell.clone(),
            if self.options.query_cache {
                self.options.query_cache_capacity
            } else {
                0
            },
        )
    }

    /// The publication cell behind [`SpatialTable::reader`], for callers
    /// that need to hand out readers without holding the table (e.g. the
    /// catalog's connection handlers).
    pub fn snapshot_cell(&self) -> Arc<SnapshotCell<TableSnapshot>> {
        self.cell.clone()
    }

    /// The most recently published snapshot.
    pub fn current_snapshot(&self) -> Arc<TableSnapshot> {
        self.current.clone()
    }

    /// Current publication generation (bumped by every mutation).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Drops every cached estimate. Called by every path that changes what
    /// an estimate could return: row mutations and statistics installs.
    fn invalidate_cache(&mut self) {
        // A poisoned lock only means some estimating thread panicked; the
        // cache itself is a plain value and flushing it is always safe.
        self.serving
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .cache
            .invalidate();
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` if the table has no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The current statistics histogram, if `ANALYZE` has run.
    pub fn stats(&self) -> Option<&SpatialHistogram> {
        self.stats.as_ref()
    }

    /// Inserts a rectangle; returns its row id.
    ///
    /// The index is maintained eagerly (as a DBMS would); the statistics
    /// are patched incrementally and their staleness grows.
    pub fn insert(&mut self, rect: Rect) -> RowId {
        let id = self.rows.len() as u64;
        self.rows.push(Some(rect));
        self.live += 1;
        self.index.insert(rect, id);
        if let Some(stats) = &mut self.stats {
            stats.note_insert(&rect);
        }
        self.data_era += 1;
        self.invalidate_cache();
        self.publish();
        RowId(id)
    }

    /// Deletes a row; returns `false` if the id was unknown or already
    /// deleted.
    pub fn delete(&mut self, id: RowId) -> bool {
        let Some(slot) = self.rows.get_mut(id.0 as usize) else {
            return false;
        };
        let Some(rect) = slot.take() else {
            return false;
        };
        self.live -= 1;
        let removed = self.index.remove(&rect, &id.0);
        debug_assert!(removed, "index out of sync with storage");
        if let Some(stats) = &mut self.stats {
            stats.note_delete(&rect);
        }
        self.data_era += 1;
        self.invalidate_cache();
        self.publish();
        true
    }

    /// Fetches a row's rectangle.
    pub fn get(&self, id: RowId) -> Option<Rect> {
        self.rows.get(id.0 as usize).copied().flatten()
    }

    /// Builds the configured statistics over `data` via the strict `try_*`
    /// constructors — one rung of the ladder, no fallback.
    fn build_stats(
        data: &Dataset,
        opts: AnalyzeOptions,
        threads: usize,
    ) -> Result<SpatialHistogram, BuildError> {
        match opts.technique {
            StatsTechnique::MinSkew => {
                let mut b = MinSkewBuilder::try_new(opts.buckets)?
                    .try_regions(opts.regions)?
                    .threads(threads);
                if opts.refinements > 0 {
                    b = b.try_progressive_refinements(opts.refinements)?;
                }
                b.try_build(data)
            }
            StatsTechnique::EquiArea => try_build_equi_area(data, opts.buckets),
            StatsTechnique::EquiCount => try_build_equi_count(data, opts.buckets),
            StatsTechnique::Uniform => try_build_uniform(data),
        }
    }

    /// Snapshots the live rows as an in-memory dataset.
    fn snapshot(&self) -> Dataset {
        Dataset::new(self.rows.iter().flatten().copied().collect())
    }

    /// Installs `hist` and records how it was obtained. New statistics mean
    /// new estimates, so the query cache is flushed here — this covers
    /// `analyze`, `try_analyze`, `load_stats`, and auto-`ANALYZE` alike.
    pub(crate) fn install_stats(&mut self, hist: SpatialHistogram, mut diag: StatsDiagnostics) {
        diag.requested_buckets = self.options.analyze.buckets;
        diag.achieved_buckets = hist.buckets().len();
        if self.options.metrics && minskew_obs::enabled() {
            // Degradation-ladder outcome counters: one per fallback rung, so
            // a fleet of tables exposes how often ANALYZE lands where.
            self.registry
                .counter(&format!(
                    "engine.analyze.fallback.{}",
                    diag.fallback.label()
                ))
                .inc();
            self.registry
                .gauge("engine.stats.buckets")
                .set(diag.achieved_buckets as f64);
            self.registry
                .gauge("engine.stats.bytes")
                .set(hist.size_bytes() as f64);
        }
        self.stats = Some(hist);
        self.diagnostics = diag;
        // A statistics install starts a new era: flush the query cache
        // *before* publishing, so no path — locked or lock-free — can pair
        // the new statistics with state from the old ones. The
        // era/generation stamps in the published snapshot enforce the same
        // discipline on every reader cache. The accuracy reservoir is
        // deliberately **not** cleared: its sample is of the served
        // workload (still representative) and its cached exact counts are
        // a property of the *data*, not of the statistics — they are keyed
        // to the data era and survive any install. Clearing here would
        // discard exactly the feedback pairs the online refiner needs on
        // its next pass.
        self.stats_era += 1;
        self.invalidate_cache();
        self.publish();
    }

    /// Records one completed `ANALYZE` in the registry: a run counter plus a
    /// per-technique build-time histogram.
    fn note_analyze(&self, technique: &str, build_ns: u64) {
        if !self.options.metrics || !minskew_obs::enabled() {
            return;
        }
        self.registry.counter("engine.analyze.runs").inc();
        self.registry
            .histogram(&format!(
                "engine.analyze.{}.build_ns",
                minskew_obs::name_component(technique)
            ))
            .record(build_ns);
    }

    /// Rebuilds the optimizer statistics from the live rows, strictly: the
    /// configured technique at the configured budget, or an error. Nothing
    /// is installed on failure (the previous statistics stay in force).
    pub fn try_analyze(&mut self) -> Result<(), BuildError> {
        let mut clock = Stopwatch::start();
        let hist = Self::build_stats(&self.snapshot(), self.options.analyze, self.options.threads)?;
        self.note_analyze(hist.name(), clock.lap());
        self.install_stats(
            hist,
            StatsDiagnostics {
                attempts: 1,
                ..StatsDiagnostics::default()
            },
        );
        Ok(())
    }

    /// Rebuilds the optimizer statistics from the live rows
    /// (the `ANALYZE` command).
    ///
    /// Unlike [`SpatialTable::try_analyze`], this never fails: when the
    /// configured build cannot succeed it walks the degradation ladder —
    /// retry at the achievable bucket budget, then fall back to the
    /// single-bucket uniform assumption — and records the outcome in
    /// [`SpatialTable::stats_diagnostics`].
    pub fn analyze(&mut self) {
        let opts = self.options.analyze;
        let data = self.snapshot();
        let mut clock = Stopwatch::start();
        let mut diag = StatsDiagnostics {
            attempts: 1,
            ..StatsDiagnostics::default()
        };
        let err = match Self::build_stats(&data, opts, self.options.threads) {
            Ok(hist) => {
                self.note_analyze(hist.name(), clock.lap());
                self.install_stats(hist, diag);
                return;
            }
            Err(e) => e,
        };
        diag.last_error = Some(err.to_string());
        // Rung 2: the grid supports fewer buckets than requested — degrade
        // the budget to the achievable count and retry once.
        if let BuildError::GridTooCoarse { regions, .. } = err {
            if regions > 0 {
                diag.attempts += 1;
                let degraded = AnalyzeOptions {
                    buckets: regions,
                    ..opts
                };
                if let Ok(hist) = Self::build_stats(&data, degraded, self.options.threads) {
                    diag.degraded = true;
                    diag.fallback = StatsFallback::DegradedBuckets;
                    self.note_analyze(hist.name(), clock.lap());
                    self.install_stats(hist, diag);
                    return;
                }
            }
        }
        // Floor: the uniform assumption is constructible in every state
        // (including the empty table).
        diag.attempts += 1;
        diag.degraded = true;
        diag.fallback = StatsFallback::Uniform;
        let hist = build_uniform(&data);
        self.note_analyze(hist.name(), clock.lap());
        self.install_stats(hist, diag);
    }

    /// Installs a persisted statistics summary (the bytes of
    /// [`SpatialHistogram::to_bytes`]).
    ///
    /// A summary that fails to decode is never installed; instead the table
    /// falls back down the ladder — rebuild from the live rows (itself
    /// degradation-protected via [`SpatialTable::analyze`]) — and the
    /// returned diagnostics say so. Estimates therefore stay available and
    /// bounded through a corrupt-summary / recovery cycle.
    pub fn load_stats(&mut self, bytes: &[u8]) -> StatsDiagnostics {
        match SpatialHistogram::from_bytes(bytes) {
            Ok(hist) => {
                self.install_stats(
                    hist,
                    StatsDiagnostics {
                        attempts: 1,
                        ..StatsDiagnostics::default()
                    },
                );
            }
            Err(e) => {
                let corrupt = e.to_string();
                if self.options.metrics && minskew_obs::enabled() {
                    self.registry.counter("engine.stats.corrupt_summary").inc();
                }
                self.analyze();
                // analyze() recorded its own outcome; stamp on top that the
                // trigger was a corrupt summary, preserving a deeper rung.
                self.diagnostics.degraded = true;
                self.diagnostics.attempts += 1;
                if self.diagnostics.fallback != StatsFallback::Uniform {
                    self.diagnostics.fallback = StatsFallback::RebuiltFromData;
                }
                self.diagnostics.last_error = Some(format!("corrupt summary: {corrupt}"));
            }
        }
        self.stats_diagnostics()
    }

    /// Diagnostics for the most recent statistics build or load, with the
    /// query-cache counters merged in. Returned by value: the counters live
    /// with the cache behind the serving lock, so a borrow cannot carry
    /// them.
    pub fn stats_diagnostics(&self) -> StatsDiagnostics {
        let serving = self.serving.lock().unwrap_or_else(PoisonError::into_inner);
        let mut diag = self.diagnostics.clone();
        diag.cache_hits = serving.cache.hits();
        diag.cache_misses = serving.cache.misses();
        diag.cache_invalidations = serving.cache.invalidations();
        diag.batch_queries = serving.batch_queries;
        diag.batch_cache_bypass = serving.batch_bypass;
        diag
    }

    /// Sets the worker-thread count used by ANALYZE and batch estimation
    /// (`1` = inline serial reference, `0` = one worker per available core).
    ///
    /// Thread count is a performance knob only: every result is
    /// bit-identical at every setting, so it can be changed at any time
    /// without invalidating existing statistics.
    pub fn set_threads(&mut self, threads: usize) {
        self.options.threads = threads;
    }

    /// Replaces the `ANALYZE` configuration (technique, bucket budget,
    /// grid regions, refinements). Takes effect on the next analysis; the
    /// installed statistics are untouched.
    pub fn set_analyze_options(&mut self, analyze: AnalyzeOptions) {
        self.options.analyze = analyze;
    }

    /// Reconfigures the query-result cache: on/off and capacity. The cache
    /// (and its hit/miss counters) is reset.
    pub fn set_query_cache(&mut self, enabled: bool, capacity: usize) {
        self.options.query_cache = enabled;
        self.options.query_cache_capacity = capacity;
        let serving = self
            .serving
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner);
        serving.cache = QueryCache::new(if enabled { capacity } else { 0 });
        // The fresh cache restarts its counters from zero; reset their
        // published high-water marks so later deltas stay non-negative.
        serving.published.cache_hits = 0;
        serving.published.cache_misses = 0;
        serving.published.cache_invalidations = 0;
    }

    /// Estimated result size for `query`, falling back to the global
    /// uniformity assumption when the table was never analyzed.
    ///
    /// The result is always finite and clamped to `[0, N]` (no statistics
    /// state, however degraded, can claim more rows than the table holds).
    pub fn estimate(&self, query: &Rect) -> f64 {
        // A non-finite query cannot intersect anything real.
        self.try_estimate(query).unwrap_or(0.0)
    }

    /// Estimated result size for `query`, rejecting non-finite queries
    /// instead of guessing. The `Ok` value is finite and within `[0, N]`.
    ///
    /// Serving path: the estimate goes through the histogram's
    /// [`minskew_core::BucketIndex`] (sub-linear in the bucket count,
    /// bit-identical to the linear scan) and, when
    /// [`TableOptions::query_cache`] is on, through the per-table LRU —
    /// also bit-identical, because every mutation flushes it.
    pub fn try_estimate(&self, query: &Rect) -> Result<f64, EstimateError> {
        if !query.is_finite() {
            return Err(EstimateError::NonFiniteQuery);
        }
        let mut guard = self.serving.lock().unwrap_or_else(PoisonError::into_inner);
        let serving = &mut *guard;
        // Sync with the published snapshot before any cache probe: a stale
        // generation flushes the cache, a stale data era invalidates the
        // reservoir's cached exact counts (churn made them inexact — the
        // sampled queries themselves stay resident). Mutations also flush
        // eagerly (they hold `&mut self`), so this is normally a no-op —
        // it exists so cache coherence is a property of publication itself
        // rather than of every mutation path remembering to flush.
        if serving.seen_generation != self.generation {
            serving.cache.invalidate();
            serving.seen_generation = self.generation;
        }
        if serving.seen_era != self.data_era {
            serving.reservoir.invalidate_exact();
            serving.seen_era = self.data_era;
        }
        serving.calls += 1;
        if !self.options.metrics || !minskew_obs::enabled() {
            // Metrics off: the original serving path, untouched. The counter
            // bump above is a plain u64 add under the already-held lock.
            if !self.options.query_cache {
                return Ok(self.estimate_finite(query, &mut serving.scratch));
            }
            let key = cache_key(query);
            if let Some(cached) = serving.cache.get(&key) {
                return Ok(cached);
            }
            let value = self.estimate_finite(query, &mut serving.scratch);
            serving.cache.insert(key, value);
            return Ok(value);
        }
        // Metrics on: 1-in-`metrics_sampling` calls take the timed path;
        // the rest run the exact same estimator functions with counter-only
        // bookkeeping (crucially: no clock reads off the sampled path).
        let mask = u64::from(self.options.metrics_sampling.max(1)).next_power_of_two() - 1;
        if (serving.calls - 1) & mask == 0 {
            serving.sampled += 1;
            return Ok(self.estimate_timed(query, serving));
        }
        if !self.options.query_cache {
            let value = self.estimate_finite(query, &mut serving.scratch);
            serving.reservoir.observe(*query);
            return Ok(value);
        }
        let key = cache_key(query);
        if let Some(cached) = serving.cache.get(&key) {
            return Ok(cached);
        }
        let value = self.estimate_finite(query, &mut serving.scratch);
        serving.cache.insert(key, value);
        serving.reservoir.observe(*query);
        Ok(value)
    }

    /// The sampled serving path: same functions in the same order as the
    /// unsampled path (so the result is bit-identical), with a [`Stopwatch`]
    /// lap between stages feeding the `engine.query.*_ns` histograms.
    ///
    /// This is also where the flight recorder's `slow` and `sampled`
    /// triggers live: only sampled calls read the clock, so slow-query
    /// detection rides this path and the unsampled fast path stays exactly
    /// as it was. Recording happens strictly after the value is computed
    /// and only writes the ring's atomics — bit-invisible by construction.
    fn estimate_timed(&self, query: &Rect, serving: &mut ServingState) -> f64 {
        let mut clock = Stopwatch::start();
        if self.options.query_cache {
            let key = cache_key(query);
            let cached = serving.cache.get(&key);
            self.metrics.cache_probe_ns.record(clock.lap());
            if let Some(value) = cached {
                // A cache hit cannot be slow and carries no scan evidence;
                // it is never flight-recorded.
                return value;
            }
            let raw = self.estimate_raw(query, &mut serving.scratch);
            self.metrics.index_scan_ns.record(clock.lap());
            let value = self.clamp_estimate(raw);
            self.metrics.clamp_ns.record(clock.lap());
            let total_ns = clock.total();
            self.record_estimate_latency(total_ns);
            self.note_flight(query, value, total_ns, serving.sampled);
            serving.cache.insert(key, value);
            serving.reservoir.observe(*query);
            return value;
        }
        let raw = self.estimate_raw(query, &mut serving.scratch);
        self.metrics.index_scan_ns.record(clock.lap());
        let value = self.clamp_estimate(raw);
        self.metrics.clamp_ns.record(clock.lap());
        let total_ns = clock.total();
        self.record_estimate_latency(total_ns);
        self.note_flight(query, value, total_ns, serving.sampled);
        serving.reservoir.observe(*query);
        value
    }

    /// Offers one computed, timed estimate to the flight recorder: `slow`
    /// when the latency threshold fires, else a 1-in-N `sampled` baseline
    /// record. Table-level records carry no trace id (wire records, which
    /// do, are captured by the server).
    fn note_flight(&self, query: &Rect, estimate: f64, latency_ns: u64, sampled: u64) {
        if self.flight.capacity() == 0 {
            return;
        }
        let slow = self.options.flight_slow_ns > 0 && latency_ns >= self.options.flight_slow_ns;
        // `sampled` is the 1-based index of this call within the timed
        // stream, so `(sampled - 1) % N == 0` captures the 1st, N+1th, ….
        let trigger = if slow {
            FlightTrigger::Slow
        } else if self.options.flight_sample > 0
            && (sampled.wrapping_sub(1)).is_multiple_of(u64::from(self.options.flight_sample))
        {
            FlightTrigger::Sampled
        } else {
            return;
        };
        self.flight.record(&QueryRecord {
            trigger,
            tid: String::new(),
            query: [query.lo.x, query.lo.y, query.hi.x, query.hi.y],
            estimate,
            exact: None,
            latency_ns,
            generation: self.generation,
        });
    }

    /// [`SpatialTable::try_estimate`] with the evidence attached: which
    /// serving path ran, what the cache would have done, per-bucket
    /// contributions, extension-rule inputs, and pruning counters. The
    /// trace's headline estimate is **bit-identical** to `try_estimate`
    /// for the same query — EXPLAIN recomputes through the identical
    /// serving path and never inserts into (or evicts from) the query
    /// cache, so tracing perturbs nothing.
    pub fn try_explain(&self, query: &Rect) -> Result<EstimateTrace, EstimateError> {
        if !query.is_finite() {
            return Err(EstimateError::NonFiniteQuery);
        }
        let mut guard = self.serving.lock().unwrap_or_else(PoisonError::into_inner);
        let serving = &mut *guard;
        if serving.seen_generation != self.generation {
            serving.cache.invalidate();
            serving.seen_generation = self.generation;
        }
        let cached = self.options.query_cache && serving.cache.get(&cache_key(query)).is_some();
        serving.scratch.used_router = false;
        let mut trace = self.current.explain(query, &mut serving.scratch);
        trace.cache = if !self.options.query_cache {
            CacheDisposition::Bypassed
        } else if cached {
            CacheDisposition::Hit
        } else {
            CacheDisposition::Miss
        };
        Ok(trace)
    }

    /// The table's flight recorder: the ring of slow / wrong / sampled
    /// query records (see [`TableOptions::flight_capacity`]). The `Arc`
    /// lets a server drain records without holding the table lock.
    pub fn flight_recorder(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.flight)
    }

    /// Records a sampled end-to-end estimate latency into the per-technique
    /// histogram `engine.estimate.<technique>.ns`.
    fn record_estimate_latency(&self, ns: u64) {
        let technique = match &self.stats {
            Some(stats) => minskew_obs::name_component(stats.name()),
            None => String::from("fallback"),
        };
        self.registry
            .histogram(&format!("engine.estimate.{technique}.ns"))
            .record(ns);
    }

    /// The uncached estimator core for a query already validated finite.
    /// All serving entry points (single-query, batch, planner) funnel here,
    /// so they agree bit for bit.
    fn estimate_finite(&self, query: &Rect, scratch: &mut EstimateScratch) -> f64 {
        self.clamp_estimate(self.estimate_raw(query, scratch))
    }

    /// The raw (unclamped) estimate, computed against the current published
    /// [`TableSnapshot`] — the same object lock-free readers load — so the
    /// locked and lock-free serving paths agree by construction. Routes
    /// through the shard router when [`TableOptions::shards`] > 1, the
    /// bucket index otherwise; both are bit-identical to the linear scan.
    fn estimate_raw(&self, query: &Rect, scratch: &mut EstimateScratch) -> f64 {
        self.current.estimate_raw(query, scratch)
    }

    /// Clamp to `[0, N]`: degraded or stale statistics may over- or
    /// under-shoot, but the bound always holds.
    fn clamp_estimate(&self, raw: f64) -> f64 {
        if raw.is_finite() {
            raw.clamp(0.0, self.live as f64)
        } else {
            0.0
        }
    }

    /// Estimated result sizes for a batch of queries, fanned out across
    /// [`TableOptions::threads`] worker threads (`1` = inline serial, `0` =
    /// one worker per available core).
    ///
    /// Semantically `queries.iter().map(|q| self.estimate(q)).collect()`,
    /// and **bit-identical** to that serial loop at every thread count:
    /// each estimate is computed independently against the immutable
    /// statistics and written back at its query's index — no cross-query
    /// accumulation, so no floating-point reordering. Batch estimation is
    /// the planner's bulk entry point (multi-query optimization, workload
    /// what-if analysis, auto-tuning sweeps).
    ///
    /// Each worker reuses one [`IndexScratch`] across every query it
    /// serves, so the loop is allocation-free once the scratch warms up.
    /// The batch path bypasses the query cache — with per-worker scratch
    /// there is no shared state to lock — so cached single-query answers are
    /// neither consulted nor refreshed here. That silent bypass is itself
    /// observable: every batch bumps [`StatsDiagnostics::batch_queries`],
    /// and when the cache is enabled the bypassed queries are counted in
    /// [`StatsDiagnostics::batch_cache_bypass`].
    ///
    /// Internally the pool is evaluated in **Morton order** of the query
    /// centres ([`minskew_core::morton_schedule`]): consecutive queries are
    /// spatial neighbours, so they touch the same index cells and the same
    /// stretches of the SoA kernel plane instead of bouncing across it.
    /// Each estimate is computed independently, so the schedule cannot move
    /// a bit; results are scattered back to input order before returning.
    pub fn estimate_batch(&self, queries: &[Rect]) -> Vec<f64> {
        self.note_batch(queries.len());
        let order = minskew_core::morton_schedule(queries);
        let sorted: Vec<Rect> = order.iter().map(|&i| queries[i as usize]).collect();
        // Chunked queue rather than static chunks: estimate cost varies
        // with how many buckets a query overlaps.
        let results = minskew_par::map_chunks_queued_with(
            self.options.threads,
            64,
            &sorted,
            EstimateScratch::new,
            |scratch, q| {
                if q.is_finite() {
                    self.estimate_finite(q, scratch)
                } else {
                    0.0
                }
            },
        );
        let mut out = vec![0.0f64; queries.len()];
        for (&value, &i) in results.iter().zip(&order) {
            out[i as usize] = value;
        }
        out
    }

    /// Strict counterpart of [`SpatialTable::estimate_batch`]: any
    /// non-finite query fails the whole batch instead of estimating zero.
    ///
    /// Validation runs as one upfront pass over the batch, so the worker
    /// loop itself is branch-light; the reported error is the same
    /// first-in-input-order failure the per-query loop would hit.
    pub fn try_estimate_batch(&self, queries: &[Rect]) -> Result<Vec<f64>, EstimateError> {
        if queries.iter().any(|q| !q.is_finite()) {
            return Err(EstimateError::NonFiniteQuery);
        }
        self.note_batch(queries.len());
        let order = minskew_core::morton_schedule(queries);
        let sorted: Vec<Rect> = order.iter().map(|&i| queries[i as usize]).collect();
        let results = minskew_par::map_chunks_queued_with(
            self.options.threads,
            64,
            &sorted,
            EstimateScratch::new,
            |scratch, q| self.estimate_finite(q, scratch),
        );
        let mut out = vec![0.0f64; queries.len()];
        for (&value, &i) in results.iter().zip(&order) {
            out[i as usize] = value;
        }
        Ok(out)
    }

    /// Records one batch invocation of `n` queries in the serving counters.
    fn note_batch(&self, n: usize) {
        let mut serving = self.serving.lock().unwrap_or_else(PoisonError::into_inner);
        serving.batch_calls += 1;
        serving.batch_queries += n as u64;
        if self.options.query_cache {
            serving.batch_bypass += n as u64;
        }
    }

    /// Publishes the serving counters into the per-table registry as deltas
    /// over the previously published high-water marks. Runs only on metric
    /// reads, never on the serving path.
    fn publish_serving_metrics(&self, serving: &mut ServingState) {
        if !self.options.metrics || !minskew_obs::enabled() {
            return;
        }
        let calls = serving.calls;
        let sampled = serving.sampled;
        let batch_calls = serving.batch_calls;
        let batch_queries = serving.batch_queries;
        let batch_bypass = serving.batch_bypass;
        let cache_hits = serving.cache.hits();
        let cache_misses = serving.cache.misses();
        let cache_invalidations = serving.cache.invalidations();
        let published = &mut serving.published;
        // `saturating_sub`: reconfiguring the cache resets its counters, so
        // a current value may briefly sit below its published shadow.
        let bump = |name: &str, current: u64, shadow: &mut u64| {
            self.registry
                .counter(name)
                .add(current.saturating_sub(*shadow));
            *shadow = current;
        };
        bump("engine.query.calls", calls, &mut published.calls);
        bump("engine.query.sampled", sampled, &mut published.sampled);
        bump(
            "engine.batch.calls",
            batch_calls,
            &mut published.batch_calls,
        );
        bump(
            "engine.batch.queries",
            batch_queries,
            &mut published.batch_queries,
        );
        bump(
            "engine.batch.cache_bypass",
            batch_bypass,
            &mut published.batch_bypass,
        );
        bump("engine.cache.hits", cache_hits, &mut published.cache_hits);
        bump(
            "engine.cache.misses",
            cache_misses,
            &mut published.cache_misses,
        );
        bump(
            "engine.cache.invalidations",
            cache_invalidations,
            &mut published.cache_invalidations,
        );
    }

    /// A snapshot of this table's metrics registry (`engine.*` counters,
    /// gauges, and latency histograms). Serving counters are published into
    /// the registry lazily, on this read — the hot path only does plain
    /// arithmetic under its own lock.
    ///
    /// Build-time metrics (`core.build.*`) and parallel-runtime metrics
    /// (`par.*`) live in the process-wide [`minskew_obs::Registry::global`]
    /// registry, not here: they aggregate work that is not owned by any one
    /// table.
    pub fn metrics(&self) -> minskew_obs::RegistrySnapshot {
        {
            let mut serving = self.serving.lock().unwrap_or_else(PoisonError::into_inner);
            self.publish_serving_metrics(&mut serving);
        }
        self.registry.snapshot()
    }

    /// This table's metrics as a self-describing JSON document
    /// (schema `minskew-obs/v1`).
    pub fn metrics_json(&self) -> String {
        self.metrics().to_json()
    }

    /// Replays the accuracy monitor's reservoir of sampled served queries
    /// against exact index counts and reports the paper's §5 error metric
    /// `Σ|r_i − e_i| / Σ r_i` over that sample.
    ///
    /// Returns `None` when nothing has been sampled yet (metrics disabled,
    /// [`TableOptions::accuracy_reservoir`] zero, or no uncached queries
    /// served since the last statistics install). The audit runs the exact
    /// counts outside the serving lock, so concurrent estimates are not
    /// blocked; it publishes `engine.accuracy.avg_rel_error` /
    /// `engine.accuracy.samples` gauges and, on drift, bumps the
    /// `engine.accuracy.drift_detected` counter.
    pub fn audit_accuracy(&self) -> Option<AccuracyReport> {
        let (samples, observed) = {
            let mut serving = self.serving.lock().unwrap_or_else(PoisonError::into_inner);
            // Sync the data era first so any exact counts cached by a
            // previous audit are dropped if churn made them inexact.
            if serving.seen_era != self.data_era {
                serving.reservoir.invalidate_exact();
                serving.seen_era = self.data_era;
            }
            (
                serving.reservoir.samples().to_vec(),
                serving.reservoir.seen(),
            )
        };
        if samples.is_empty() {
            return None;
        }
        let mut scratch = EstimateScratch::new();
        let mut num = 0.0;
        let mut den = 0.0;
        let mut exacts = Vec::with_capacity(samples.len());
        for sample in &samples {
            // Exact counts replayed by a previous audit in the same data
            // era are still exact; only fresh samples pay the index count.
            let actual = sample
                .exact
                .unwrap_or_else(|| self.index.count_intersecting(&sample.query) as f64);
            let estimate = self.estimate_finite(&sample.query, &mut scratch);
            exacts.push(actual);
            num += (actual - estimate).abs();
            den += actual;
            // The replay is the only place the system holds a (query,
            // exact, estimate) triple: a residual past the threshold files
            // a `wrong` flight record so the offending query is
            // inspectable after the fact.
            let residual = (actual - estimate).abs() / actual.abs().max(1.0);
            if self.flight.capacity() > 0
                && self.options.flight_residual > 0.0
                && residual > self.options.flight_residual
            {
                self.flight.record(&QueryRecord {
                    trigger: FlightTrigger::Wrong,
                    tid: String::new(),
                    query: [
                        sample.query.lo.x,
                        sample.query.lo.y,
                        sample.query.hi.x,
                        sample.query.hi.y,
                    ],
                    estimate,
                    exact: Some(actual),
                    latency_ns: 0,
                    generation: self.generation,
                });
            }
        }
        // Cache the replayed exact counts back into the reservoir so the
        // online refiner (and the next audit) can reuse them. Mutations
        // need `&mut self`, so the data era cannot have advanced since the
        // sync above; individual slots may have rotated under concurrent
        // estimates, which `record_exact` guards with a bit-exact query
        // match.
        {
            let mut serving = self.serving.lock().unwrap_or_else(PoisonError::into_inner);
            for (i, (sample, &actual)) in samples.iter().zip(&exacts).enumerate() {
                serving.reservoir.record_exact(i, &sample.query, actual);
            }
        }
        let avg_relative_error = num / den.max(1.0);
        let drifted = avg_relative_error > self.options.accuracy_drift_threshold;
        let report = AccuracyReport {
            samples: samples.len(),
            observed,
            avg_relative_error,
            drifted,
            recommend_reanalyze: drifted || self.stats_stale(),
        };
        if self.options.metrics && minskew_obs::enabled() {
            self.registry
                .gauge("engine.accuracy.avg_rel_error")
                .set(avg_relative_error);
            self.registry
                .gauge("engine.accuracy.samples")
                .set(samples.len() as f64);
            if drifted {
                self.registry
                    .counter("engine.accuracy.drift_detected")
                    .inc();
            }
        }
        Some(report)
    }

    fn stats_stale(&self) -> bool {
        match (&self.stats, self.options.auto_analyze_threshold) {
            (None, _) => true,
            (Some(stats), Some(threshold)) => stats.staleness() > threshold,
            (Some(_), None) => false,
        }
    }

    /// Staleness of the installed statistics (weighted unabsorbed churn
    /// over the stable mutation base; see
    /// [`minskew_core::SpatialHistogram::staleness`]). `None` when the
    /// table was never analyzed.
    pub fn stats_staleness(&self) -> Option<f64> {
        self.stats.as_ref().map(|s| s.staleness())
    }

    /// The active maintenance mode (see [`TableOptions::maintenance`]).
    pub fn maintenance_mode(&self) -> MaintenanceMode {
        self.options.maintenance
    }

    /// Switches the maintenance mode. Takes effect on the next
    /// [`SpatialTable::maintain`] pass; the installed statistics and the
    /// accuracy reservoir are untouched.
    pub fn set_maintenance_mode(&mut self, mode: MaintenanceMode) {
        self.options.maintenance = mode;
    }

    /// One maintenance pass: audit accuracy, and — when the audit (or
    /// staleness) recommends repair — apply the configured
    /// [`MaintenanceMode`]'s remedy.
    ///
    /// * [`MaintenanceMode::Off`] — audit only, never repairs.
    /// * [`MaintenanceMode::DriftReAnalyze`] — full re-`ANALYZE` from the
    ///   live rows (exactly what a caller reacting to
    ///   [`AccuracyReport::recommend_reanalyze`] would do by hand).
    /// * [`MaintenanceMode::OnlineRefine`] — one bounded refine step from
    ///   the reservoir's replayed (query, exact) feedback, published
    ///   through the same snapshot cell as any install (generation bump,
    ///   caches invalidated, readers never see a torn install); falls back
    ///   to a full re-`ANALYZE` when there is nothing to refine.
    ///
    /// With no sampled queries yet, repair is driven by staleness alone.
    pub fn maintain(&mut self) -> MaintenanceReport {
        let audit = self.audit_accuracy();
        let needs_repair = audit
            .as_ref()
            .map_or_else(|| self.stats_stale(), |report| report.recommend_reanalyze);
        if self.options.metrics && minskew_obs::enabled() {
            self.registry.counter("engine.maintenance.runs").inc();
        }
        let action = if !needs_repair || self.options.maintenance == MaintenanceMode::Off {
            MaintenanceAction::None
        } else if self.options.maintenance == MaintenanceMode::OnlineRefine {
            match self.refine_step() {
                Some(report) => MaintenanceAction::Refined(report),
                None => {
                    self.analyze();
                    MaintenanceAction::Reanalyzed
                }
            }
        } else {
            self.analyze();
            MaintenanceAction::Reanalyzed
        };
        if self.options.metrics && minskew_obs::enabled() {
            let name = match action {
                MaintenanceAction::None => "none",
                MaintenanceAction::Reanalyzed => "reanalyze",
                MaintenanceAction::Refined(_) => "refine",
            };
            self.registry
                .counter(&format!("engine.maintenance.action.{name}"))
                .inc();
        }
        MaintenanceReport { audit, action }
    }

    /// One bounded online refine step: gathers the reservoir's replayed
    /// (query, exact, estimate) triples and runs
    /// [`minskew_core::SpatialHistogram::refine`] over the installed
    /// statistics. Returns `None` — without touching anything — when there
    /// are no statistics or no replayed feedback to refine from.
    fn refine_step(&mut self) -> Option<RefineReport> {
        self.stats.as_ref()?;
        let samples: Vec<_> = {
            let serving = self.serving.lock().unwrap_or_else(PoisonError::into_inner);
            serving.reservoir.samples().to_vec()
        };
        let mut scratch = EstimateScratch::new();
        let observations: Vec<RefineObservation> = samples
            .iter()
            .filter_map(|sample| {
                sample.exact.map(|actual| RefineObservation {
                    query: sample.query,
                    actual,
                    estimate: self.estimate_finite(&sample.query, &mut scratch),
                })
            })
            .collect();
        if observations.is_empty() {
            return None;
        }
        let mut clock = Stopwatch::start();
        let (hist, report) = self
            .stats
            .as_ref()?
            .refine(&observations, &RefineOptions::default());
        let refine_ns = clock.lap();
        self.install_refined(hist);
        if self.options.metrics && minskew_obs::enabled() {
            self.registry
                .histogram("engine.maintenance.refine_ns")
                .record(refine_ns);
        }
        Some(report)
    }

    /// Installs a refined histogram: same publication discipline as
    /// [`SpatialTable::install_stats`] (era bump, cache flush, snapshot
    /// publish — readers never see a torn install), except the diagnostics
    /// are preserved (the statistics are still the product of the last
    /// `ANALYZE`, incrementally repaired) and the accuracy reservoir keeps
    /// its replayed feedback.
    fn install_refined(&mut self, hist: SpatialHistogram) {
        if self.options.metrics && minskew_obs::enabled() {
            self.registry
                .gauge("engine.stats.buckets")
                .set(hist.buckets().len() as f64);
            self.registry
                .gauge("engine.stats.bytes")
                .set(hist.size_bytes() as f64);
        }
        self.diagnostics.achieved_buckets = hist.buckets().len();
        self.stats = Some(hist);
        self.stats_era += 1;
        self.invalidate_cache();
        self.publish();
    }

    /// Plans `query` without executing it. Runs auto-`ANALYZE` first when
    /// the statistics are missing or too stale (and auto-analysis is
    /// enabled).
    pub fn plan(&mut self, query: &Rect) -> Explain {
        if self.stats_stale() && self.options.auto_analyze_threshold.is_some() && self.live > 0 {
            self.analyze();
        }
        let stale = self.stats_stale();
        let est = self.estimate(query);
        let model = self.options.cost_model;
        let plan = model.choose(self.live, est);
        let (cost, rejected) = match plan {
            Plan::IndexScan => (model.index_scan_cost(est), model.seq_scan_cost(self.live)),
            Plan::SeqScan => (model.seq_scan_cost(self.live), model.index_scan_cost(est)),
        };
        Explain {
            plan,
            estimated_rows: est,
            estimated_cost: cost,
            rejected_cost: rejected,
            actual_rows: None,
            stats_stale: stale,
        }
    }

    /// Executes `query`, returning matching row ids (ascending).
    pub fn execute(&mut self, query: &Rect) -> Vec<RowId> {
        self.execute_explain(query).0
    }

    /// Executes `query` and returns the `EXPLAIN ANALYZE` record alongside
    /// the matching row ids.
    pub fn execute_explain(&mut self, query: &Rect) -> (Vec<RowId>, Explain) {
        let mut explain = self.plan(query);
        let mut ids: Vec<RowId> = match explain.plan {
            Plan::SeqScan => self
                .rows
                .iter()
                .enumerate()
                .filter_map(|(i, slot)| {
                    slot.filter(|r| r.intersects(query))
                        .map(|_| RowId(i as u64))
                })
                .collect(),
            Plan::IndexScan => {
                let mut out = Vec::new();
                self.index.for_each_intersecting(query, |item| {
                    out.push(RowId(item.data));
                });
                out
            }
        };
        ids.sort_unstable();
        explain.actual_rows = Some(ids.len());
        (ids, explain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minskew_datagen::charminar_with;

    fn grid_table(side: usize) -> SpatialTable {
        let mut t = SpatialTable::new(TableOptions::default());
        for iy in 0..side {
            for ix in 0..side {
                let (x, y) = (ix as f64 * 10.0, iy as f64 * 10.0);
                t.insert(Rect::new(x, y, x + 5.0, y + 5.0));
            }
        }
        t
    }

    #[test]
    fn both_plans_return_identical_results() {
        let mut t = grid_table(40); // 1600 rows
        t.analyze();
        let q = Rect::new(33.0, 33.0, 180.0, 90.0);
        // Force each plan by manipulating the cost model.
        t.options.cost_model.index_tuple_cost = 0.0;
        t.options.cost_model.index_setup_cost = 0.0;
        let (via_index, e1) = t.execute_explain(&q);
        assert!(e1.plan.is_index_scan());
        t.options.cost_model.index_tuple_cost = f64::INFINITY;
        let (via_scan, e2) = t.execute_explain(&q);
        assert_eq!(e2.plan, Plan::SeqScan);
        assert_eq!(via_index, via_scan);
        assert!(!via_index.is_empty());
    }

    #[test]
    fn planner_switches_with_query_size() {
        let mut t = grid_table(50); // 2500 rows
        t.analyze();
        let small = t.plan(&Rect::new(0.0, 0.0, 20.0, 20.0));
        assert!(small.plan.is_index_scan(), "{small}");
        let huge = t.plan(&Rect::new(-10.0, -10.0, 1_000.0, 1_000.0));
        assert_eq!(huge.plan, Plan::SeqScan, "{huge}");
        // Estimates should be near reality after ANALYZE on uniform data.
        let (rows, e) = t.execute_explain(&Rect::new(0.0, 0.0, 100.0, 100.0));
        let actual = rows.len() as f64;
        assert!(
            (e.estimated_rows - actual).abs() / actual < 0.5,
            "estimate {} vs actual {}",
            e.estimated_rows,
            actual
        );
    }

    #[test]
    fn unanalyzed_table_plans_with_fallback() {
        let mut t = SpatialTable::new(TableOptions {
            auto_analyze_threshold: None, // keep it unanalyzed
            ..TableOptions::default()
        });
        for i in 0..100 {
            t.insert(Rect::new(i as f64, 0.0, i as f64 + 1.0, 1.0));
        }
        let e = t.plan(&Rect::new(0.0, 0.0, 10.0, 1.0));
        assert!(e.stats_stale);
        assert!(e.estimated_rows > 0.0);
    }

    #[test]
    fn delete_updates_results_and_index() {
        let mut t = grid_table(10);
        t.analyze();
        let q = Rect::new(0.0, 0.0, 9.0, 9.0); // exactly the first cell
        let (rows, _) = t.execute_explain(&q);
        assert_eq!(rows.len(), 1);
        assert!(t.delete(rows[0]));
        assert!(!t.delete(rows[0]), "double delete must fail");
        let (rows, _) = t.execute_explain(&q);
        assert!(rows.is_empty());
        assert_eq!(t.len(), 99);
        assert_eq!(t.get(RowId(0)), None);
    }

    #[test]
    fn auto_analyze_fires_on_churn() {
        let mut t = SpatialTable::new(TableOptions::default());
        for r in charminar_with(2_000, 1).rects() {
            t.insert(*r);
        }
        t.analyze();
        assert_eq!(t.stats().expect("analyzed").staleness(), 0.0);
        // Churn well past the 20% threshold.
        for i in 0..1_500 {
            let x = 4_000.0 + (i % 40) as f64 * 20.0;
            let y = 4_000.0 + (i / 40) as f64 * 20.0;
            t.insert(Rect::new(x, y, x + 50.0, y + 50.0));
        }
        assert!(t.stats().expect("analyzed").staleness() > 0.2);
        // The next plan triggers ANALYZE; afterwards staleness resets.
        let _ = t.plan(&Rect::new(4_000.0, 4_000.0, 5_000.0, 5_000.0));
        assert!(t.stats().expect("analyzed").staleness() < 1e-9);
    }

    #[test]
    fn estimates_drive_better_plans_after_analyze() {
        // Skewed table: a hot corner plus sparse background. A stats-less
        // planner (uniform fallback) badly misestimates corner queries;
        // after ANALYZE the estimate is good enough to pick the right plan.
        let mut t = SpatialTable::new(TableOptions {
            auto_analyze_threshold: None,
            ..TableOptions::default()
        });
        for r in charminar_with(10_000, 2).rects() {
            t.insert(*r);
        }
        let corner = Rect::new(0.0, 0.0, 1_500.0, 1_500.0);
        let before = t.plan(&corner);
        t.analyze();
        let after = t.plan(&corner);
        let (rows, _) = t.execute_explain(&corner);
        let actual = rows.len() as f64;
        let err = |e: &Explain| (e.estimated_rows - actual).abs() / actual.max(1.0);
        assert!(
            err(&after) < err(&before),
            "ANALYZE must improve the corner estimate ({:.2} -> {:.2})",
            err(&before),
            err(&after)
        );
    }

    #[test]
    fn empty_table_is_sane() {
        let mut t = SpatialTable::new(TableOptions::default());
        assert!(t.is_empty());
        let (rows, e) = t.execute_explain(&Rect::new(0.0, 0.0, 1.0, 1.0));
        assert!(rows.is_empty());
        assert_eq!(e.actual_rows, Some(0));
        assert!(!t.delete(RowId(5)));
    }

    #[test]
    fn estimate_batch_equals_per_query_loop_at_every_thread_count() {
        let mut t = SpatialTable::new(TableOptions::default());
        for r in charminar_with(3_000, 4).rects() {
            t.insert(*r);
        }
        t.analyze();
        let queries: Vec<Rect> = (0..200)
            .map(|i| {
                let s = (i % 50) as f64 * 180.0;
                Rect::new(s, s * 0.5, s + 700.0, s * 0.5 + 700.0)
            })
            .collect();
        let serial: Vec<f64> = queries.iter().map(|q| t.estimate(q)).collect();
        for threads in [0usize, 1, 2, 3, 8] {
            t.options.threads = threads;
            let batch = t.estimate_batch(&queries);
            // Bit-identical, not approximately equal.
            let serial_bits: Vec<u64> = serial.iter().map(|v| v.to_bits()).collect();
            let batch_bits: Vec<u64> = batch.iter().map(|v| v.to_bits()).collect();
            assert_eq!(batch_bits, serial_bits, "threads = {threads}");
            assert_eq!(t.try_estimate_batch(&queries).expect("finite"), serial);
        }
        // Strict batch rejects a poisoned query; graceful batch maps it to 0.
        let poisoned = Rect {
            lo: minskew_geom::Point::new(f64::NAN, 0.0),
            hi: minskew_geom::Point::new(1.0, 1.0),
        };
        let mut with_bad = queries;
        with_bad.push(poisoned);
        assert!(t.try_estimate_batch(&with_bad).is_err());
        assert_eq!(t.estimate_batch(&with_bad).last(), Some(&0.0));
    }

    #[test]
    fn threaded_analyze_builds_identical_statistics() {
        let data = charminar_with(9_000, 6);
        let mut serial_table = SpatialTable::new(TableOptions::default());
        let mut par_table = SpatialTable::new(TableOptions {
            threads: 4,
            ..TableOptions::default()
        });
        for r in data.rects() {
            serial_table.insert(*r);
            par_table.insert(*r);
        }
        serial_table.analyze();
        par_table.analyze();
        let a = serial_table.stats().expect("analyzed").to_bytes();
        let b = par_table.stats().expect("analyzed").to_bytes();
        assert_eq!(a, b, "ANALYZE must not depend on the thread count");
    }

    #[test]
    fn try_new_rejects_bad_options() {
        let bad_fanout = TableOptions {
            index_fanout: 2,
            ..TableOptions::default()
        };
        assert!(matches!(
            SpatialTable::try_new(bad_fanout),
            Err(minskew_core::BuildError::InvalidConfig(_))
        ));
        let zero_buckets = TableOptions {
            analyze: AnalyzeOptions {
                buckets: 0,
                ..Default::default()
            },
            ..TableOptions::default()
        };
        assert!(matches!(
            SpatialTable::try_new(zero_buckets),
            Err(minskew_core::BuildError::ZeroBucketBudget)
        ));
        assert!(SpatialTable::try_new(TableOptions::default()).is_ok());
    }

    #[test]
    fn try_analyze_is_strict_where_analyze_degrades() {
        // An empty table: strict analysis refuses, graceful analysis
        // degrades to the uniform floor and records it.
        let mut t = SpatialTable::new(TableOptions::default());
        assert!(matches!(
            t.try_analyze(),
            Err(minskew_core::BuildError::EmptyDataset)
        ));
        assert!(
            t.stats().is_none(),
            "failed strict analyze must not install"
        );
        t.analyze();
        let d = t.stats_diagnostics();
        assert!(d.degraded);
        assert_eq!(d.fallback, StatsFallback::Uniform);
        assert!(d.last_error.is_some());
        assert_eq!(t.estimate(&Rect::new(0.0, 0.0, 1.0, 1.0)), 0.0);
    }

    #[test]
    fn analyze_degrades_bucket_budget_to_achievable() {
        // 4-region grid but 100 requested buckets: Min-Skew cannot reach
        // the budget, so graceful analyze retries at the achievable count.
        let mut t = SpatialTable::new(TableOptions {
            analyze: AnalyzeOptions {
                regions: 4,
                ..Default::default()
            },
            ..TableOptions::default()
        });
        for r in charminar_with(500, 7).rects() {
            t.insert(*r);
        }
        assert!(matches!(
            t.try_analyze(),
            Err(minskew_core::BuildError::GridTooCoarse { .. })
        ));
        t.analyze();
        let d = t.stats_diagnostics();
        assert_eq!(d.fallback, StatsFallback::DegradedBuckets);
        assert!(d.degraded);
        assert_eq!(d.requested_buckets, 100);
        assert!(d.achieved_buckets <= 4 && d.achieved_buckets > 0, "{d:?}");
        assert_eq!(d.attempts, 2);
        // The degraded histogram still estimates, bounded by N.
        let est = t.estimate(&Rect::new(-1e6, -1e6, 1e6, 1e6));
        assert!(est >= 0.0 && est <= t.len() as f64);
    }

    #[test]
    fn load_stats_ladder_survives_corruption() {
        let mut t = SpatialTable::new(TableOptions::default());
        for r in charminar_with(2_000, 9).rects() {
            t.insert(*r);
        }
        t.analyze();
        let good = t.stats().expect("analyzed").to_bytes();
        // A healthy summary round-trips and reports no degradation.
        let d = t.load_stats(&good);
        assert_eq!(d.fallback, StatsFallback::None);
        assert!(!d.degraded);
        // A corrupt summary is never installed: the table rebuilds from its
        // own rows and says so.
        let mut corrupt = good.clone();
        corrupt[10] ^= 0xFF;
        let d = t.load_stats(&corrupt);
        assert_eq!(d.fallback, StatsFallback::RebuiltFromData);
        assert!(d.degraded);
        assert!(d
            .last_error
            .as_deref()
            .is_some_and(|e| e.contains("corrupt")));
        let q = Rect::new(0.0, 0.0, 2_000.0, 2_000.0);
        let est = t.estimate(&q);
        assert!(est.is_finite() && est >= 0.0 && est <= t.len() as f64);
    }

    #[test]
    fn estimates_are_clamped_and_total_queries_bounded() {
        let mut t = grid_table(20); // 400 rows
        t.analyze();
        // A query covering everything can never claim more than N rows.
        let everything = Rect::new(-1e9, -1e9, 1e9, 1e9);
        let est = t.estimate(&everything);
        assert!(est <= t.len() as f64 + 1e-9, "estimate {est} exceeds N");
        assert!(est >= 0.0);
        // A non-finite query (constructed through the public fields, as
        // in-memory corruption would) is rejected strictly and estimated
        // as empty gracefully.
        let poisoned = Rect {
            lo: minskew_geom::Point::new(f64::NAN, 0.0),
            hi: minskew_geom::Point::new(1.0, 1.0),
        };
        assert!(t.try_estimate(&poisoned).is_err());
        assert_eq!(t.estimate(&poisoned), 0.0);
    }

    #[test]
    fn cached_estimates_equal_uncached_and_invalidate_on_mutation() {
        let data = charminar_with(2_500, 11);
        let mut cached = SpatialTable::new(TableOptions::default());
        let mut plain = SpatialTable::new(TableOptions {
            query_cache: false,
            ..TableOptions::default()
        });
        for r in data.rects() {
            cached.insert(*r);
            plain.insert(*r);
        }
        cached.analyze();
        plain.analyze();
        let queries: Vec<Rect> = (0..60)
            .map(|i| {
                let s = (i % 20) as f64 * 300.0;
                Rect::new(s, s, s + 900.0, s + 900.0)
            })
            .collect();
        // Repeated queries: the second pass over the same 20 distinct
        // rectangles must hit the cache and return the same bits.
        for pass in 0..3 {
            for q in &queries {
                assert_eq!(
                    cached.estimate(q).to_bits(),
                    plain.estimate(q).to_bits(),
                    "pass={pass} q={q}"
                );
            }
        }
        let d = cached.stats_diagnostics();
        assert!(d.cache_hits > 0, "repeated queries must hit: {d:?}");
        assert!(d.cache_misses >= 20);
        // Mutations flush the cache; estimates immediately reflect them.
        let q = queries[0];
        let before = cached.estimate(&q);
        let id = cached.insert(Rect::new(10.0, 10.0, 60.0, 60.0));
        plain.insert(Rect::new(10.0, 10.0, 60.0, 60.0));
        assert_eq!(
            cached.estimate(&q).to_bits(),
            plain.estimate(&q).to_bits(),
            "post-insert estimates must agree (no stale cache entry)"
        );
        cached.delete(id);
        plain.delete(RowId(plain.rows.len() as u64 - 1));
        assert_eq!(
            cached.estimate(&q).to_bits(),
            plain.estimate(&q).to_bits(),
            "post-delete estimates must agree"
        );
        assert_eq!(cached.estimate(&q).to_bits(), before.to_bits());
        assert!(cached.stats_diagnostics().cache_invalidations >= 2);
    }

    #[test]
    fn query_cache_can_be_reconfigured() {
        let mut t = grid_table(20);
        t.analyze();
        let q = Rect::new(0.0, 0.0, 50.0, 50.0);
        let reference = t.estimate(&q);
        t.set_query_cache(false, 0);
        assert_eq!(t.estimate(&q).to_bits(), reference.to_bits());
        assert_eq!(t.stats_diagnostics().cache_hits, 0);
        t.set_query_cache(true, 4);
        let _ = t.estimate(&q);
        assert_eq!(t.estimate(&q).to_bits(), reference.to_bits());
        assert_eq!(t.stats_diagnostics().cache_hits, 1);
    }

    #[test]
    fn try_estimate_batch_error_position_regression() {
        // Hoisted validation must preserve the old semantics: the batch
        // fails with the same error whether the bad query sits first, in
        // the middle, or last — and a clean batch matches the per-query
        // loop exactly.
        let mut t = grid_table(15);
        t.analyze();
        let good: Vec<Rect> = (0..130)
            .map(|i| {
                let s = (i % 30) as f64 * 5.0;
                Rect::new(s, s, s + 20.0, s + 20.0)
            })
            .collect();
        let serial: Vec<f64> = good.iter().map(|q| t.estimate(q)).collect();
        assert_eq!(t.try_estimate_batch(&good).expect("all finite"), serial);
        let poisoned = Rect {
            lo: minskew_geom::Point::new(f64::INFINITY, 0.0),
            hi: minskew_geom::Point::new(1.0, 1.0),
        };
        for position in [0usize, 64, good.len()] {
            let mut batch = good.clone();
            batch.insert(position, poisoned);
            let err = t.try_estimate_batch(&batch).expect_err("must reject");
            assert!(
                matches!(err, EstimateError::NonFiniteQuery),
                "position={position}"
            );
        }
    }

    #[test]
    fn alternative_stats_techniques() {
        for technique in [
            StatsTechnique::EquiArea,
            StatsTechnique::EquiCount,
            StatsTechnique::Uniform,
        ] {
            let mut t = SpatialTable::new(TableOptions {
                analyze: AnalyzeOptions {
                    technique,
                    buckets: 30,
                    ..Default::default()
                },
                ..TableOptions::default()
            });
            for r in charminar_with(1_000, 3).rects() {
                t.insert(*r);
            }
            t.analyze();
            let e = t.plan(&Rect::new(0.0, 0.0, 2_000.0, 2_000.0));
            assert!(e.estimated_rows.is_finite() && e.estimated_rows >= 0.0);
        }
    }

    #[test]
    fn batch_counters_and_diagnostics_display() {
        let mut t = grid_table(15);
        t.analyze();
        let queries: Vec<Rect> = (0..10)
            .map(|i| Rect::new(0.0, 0.0, 10.0 + i as f64, 10.0))
            .collect();
        t.estimate_batch(&queries);
        let _ = t.try_estimate_batch(&queries[..4]).expect("finite");
        let diag = t.stats_diagnostics();
        assert_eq!(diag.batch_queries, 14);
        // The default table has the cache on, so every batch query bypassed
        // it.
        assert_eq!(diag.batch_cache_bypass, 14);
        let text = diag.to_string();
        assert!(
            text.contains("batch 14 queries (14 cache-bypassed)"),
            "{text}"
        );

        // With the cache off, batches are counted but nothing is "bypassed".
        t.set_query_cache(false, 0);
        t.estimate_batch(&queries);
        let diag = t.stats_diagnostics();
        assert_eq!(diag.batch_queries, 24);
        assert_eq!(diag.batch_cache_bypass, 14);
    }

    #[test]
    fn metrics_are_bit_invisible_to_estimates() {
        let queries: Vec<Rect> = (0..300)
            .map(|i| {
                let s = (i % 40) as f64 * 3.0;
                Rect::new(s, s, s + 25.0 + (i / 40) as f64, s + 25.0)
            })
            .collect();
        let run = |metrics: bool, sampling: u32| {
            let mut t = SpatialTable::new(TableOptions {
                metrics,
                metrics_sampling: sampling,
                ..TableOptions::default()
            });
            for iy in 0..30 {
                for ix in 0..30 {
                    let (x, y) = (ix as f64 * 10.0, iy as f64 * 10.0);
                    t.insert(Rect::new(x, y, x + 5.0, y + 5.0));
                }
            }
            t.analyze();
            let single: Vec<u64> = queries.iter().map(|q| t.estimate(q).to_bits()).collect();
            let batch: Vec<u64> = t
                .estimate_batch(&queries)
                .into_iter()
                .map(f64::to_bits)
                .collect();
            (single, batch)
        };
        let off = run(false, 256);
        // Sampling 1 forces every call down the timed path.
        for sampling in [1, 256] {
            assert_eq!(run(true, sampling), off, "sampling={sampling}");
        }
    }

    #[test]
    fn metrics_snapshot_counts_queries() {
        let mut t = grid_table(10);
        t.analyze();
        for i in 0..20 {
            let _ = t.estimate(&Rect::new(0.0, 0.0, 5.0 + i as f64, 5.0));
        }
        t.estimate_batch(&[Rect::new(0.0, 0.0, 9.0, 9.0); 3]);
        let snap = t.metrics();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
        };
        if minskew_obs::enabled() {
            assert_eq!(counter("engine.query.calls"), Some(20));
            assert_eq!(counter("engine.batch.queries"), Some(3));
            assert_eq!(counter("engine.batch.cache_bypass"), Some(3));
            // Publication is delta-based: a second read must not double
            // count.
            let again = t.metrics();
            assert_eq!(
                again
                    .counters
                    .iter()
                    .find(|(n, _)| n == "engine.query.calls"),
                Some(&("engine.query.calls".to_owned(), 20))
            );
            assert!(t.metrics_json().contains("\"engine.query.calls\": 20"));
        } else {
            // Compiled to no-ops: nothing is ever published.
            assert_eq!(counter("engine.query.calls").unwrap_or(0), 0);
        }
    }

    #[test]
    fn accuracy_audit_matches_offline_error() {
        if !minskew_obs::enabled() {
            // The serving path never samples the reservoir when the obs
            // crate is compiled to no-ops; there is nothing to audit.
            return;
        }
        let mut t = SpatialTable::new(TableOptions {
            accuracy_reservoir: 1024, // larger than the workload: no eviction
            ..TableOptions::default()
        });
        for r in charminar_with(2_000, 5).rects() {
            t.insert(*r);
        }
        t.analyze();
        let queries: Vec<Rect> = (0..100)
            .map(|i| {
                let s = (i % 10) as f64 * 700.0;
                Rect::new(s, s, s + 2_000.0, s + 1_500.0 + i as f64)
            })
            .collect();
        for q in &queries {
            let _ = t.estimate(q);
        }
        let report = t.audit_accuracy().expect("reservoir is non-empty");
        assert_eq!(report.samples, 100);
        assert_eq!(report.observed, 100);
        // Recompute the paper's metric offline over the same queries.
        let mut num = 0.0;
        let mut den = 0.0;
        for q in &queries {
            let actual = t.index.count_intersecting(q) as f64;
            num += (actual - t.estimate(q)).abs();
            den += actual;
        }
        let offline = num / den.max(1.0);
        assert!(
            (report.avg_relative_error - offline).abs() < 1e-12,
            "audit {} vs offline {offline}",
            report.avg_relative_error
        );
        assert!(!report.drifted, "{report}");
        assert!(report.to_string().starts_with("accuracy:"));
    }

    #[test]
    fn accuracy_drift_detected_after_churn_and_healed_by_analyze() {
        if !minskew_obs::enabled() {
            return;
        }
        let mut t = SpatialTable::new(TableOptions {
            accuracy_reservoir: 512,
            auto_analyze_threshold: None, // drift must not self-heal here
            ..TableOptions::default()
        });
        for iy in 0..20 {
            for ix in 0..20 {
                let (x, y) = (ix as f64 * 10.0, iy as f64 * 10.0);
                t.insert(Rect::new(x, y, x + 5.0, y + 5.0));
            }
        }
        t.analyze();
        // Pile new rows into one corner cell: the installed histogram knows
        // nothing about them beyond a staleness patch.
        for _ in 0..4_000 {
            t.insert(Rect::new(1.0, 1.0, 2.0, 2.0));
        }
        for i in 0..50 {
            let _ = t.estimate(&Rect::new(0.0, 0.0, 3.0 + (i % 7) as f64, 3.0));
        }
        let report = t.audit_accuracy().expect("queries were sampled");
        assert!(report.drifted, "{report}");
        assert!(report.recommend_reanalyze);
        // Re-ANALYZE installs fresh statistics; the reservoir's sampled
        // workload survives the install (only data churn invalidates its
        // cached exact counts), so the very next audit can already verify
        // the heal — no waiting for the sample to refill.
        t.analyze();
        let healed = t.audit_accuracy().expect("sample survives the install");
        assert_eq!(healed.samples, report.samples);
        assert!(!healed.drifted, "{healed}");
        assert!(!healed.recommend_reanalyze, "{healed}");
    }

    #[test]
    fn reservoir_exacts_survive_refine_but_not_data_churn() {
        if !minskew_obs::enabled() {
            return;
        }
        let mut t = SpatialTable::new(TableOptions {
            accuracy_reservoir: 512,
            auto_analyze_threshold: None,
            // Any audited error counts as drift, so maintain() always
            // repairs — this test is about what survives the repair.
            accuracy_drift_threshold: 0.0,
            maintenance: MaintenanceMode::OnlineRefine,
            ..TableOptions::default()
        });
        for r in charminar_with(2_000, 7).rects() {
            t.insert(*r);
        }
        t.analyze();
        for i in 0..60 {
            let s = (i % 12) as f64 * 600.0;
            let _ = t.estimate(&Rect::new(s, s, s + 1_800.0, s + 1_400.0 + i as f64));
        }
        // First audit replays exact counts and caches them in the slots.
        let audited = t.audit_accuracy().expect("queries were sampled");
        assert!(audited.samples > 0);
        let cached = |t: &SpatialTable| {
            let serving = t.serving.lock().unwrap_or_else(PoisonError::into_inner);
            let samples = serving.reservoir.samples();
            (
                samples.len(),
                samples.iter().filter(|s| s.exact.is_some()).count(),
            )
        };
        let (n0, with_exact) = cached(&t);
        assert_eq!(with_exact, n0, "audit must cache every exact count");
        // A refine install keeps both the queries and the exact counts.
        let report = t.maintain();
        assert!(
            matches!(report.action, MaintenanceAction::Refined(_)),
            "{report}"
        );
        let (n1, exact1) = cached(&t);
        assert_eq!((n1, exact1), (n0, n0), "refine must retain the feedback");
        // Data churn invalidates the exact counts but keeps the queries.
        t.insert(Rect::new(1.0, 1.0, 2.0, 2.0));
        let _ = t.estimate(&Rect::new(0.0, 0.0, 10.0, 10.0));
        let (n2, exact2) = cached(&t);
        assert!(n2 >= n0, "queries must survive churn");
        assert_eq!(exact2, 0, "churn must invalidate cached exact counts");
    }

    #[test]
    fn maintain_modes_repair_or_observe() {
        if !minskew_obs::enabled() {
            return;
        }
        let drifted_table = |mode: MaintenanceMode| {
            let mut t = SpatialTable::new(TableOptions {
                accuracy_reservoir: 512,
                auto_analyze_threshold: None,
                maintenance: mode,
                ..TableOptions::default()
            });
            for iy in 0..20 {
                for ix in 0..20 {
                    let (x, y) = (ix as f64 * 10.0, iy as f64 * 10.0);
                    t.insert(Rect::new(x, y, x + 5.0, y + 5.0));
                }
            }
            t.analyze();
            for _ in 0..4_000 {
                t.insert(Rect::new(1.0, 1.0, 2.0, 2.0));
            }
            for i in 0..50 {
                let _ = t.estimate(&Rect::new(0.0, 0.0, 3.0 + (i % 7) as f64, 3.0));
            }
            t
        };
        // Off: the drift is reported but nothing changes.
        let mut t = drifted_table(MaintenanceMode::Off);
        let era = t.stats_era;
        let report = t.maintain();
        assert!(report.audit.as_ref().is_some_and(|a| a.drifted));
        assert_eq!(report.action, MaintenanceAction::None);
        assert_eq!(t.stats_era, era, "Off must not install anything");
        // DriftReAnalyze: a full rebuild heals the drift.
        let mut t = drifted_table(MaintenanceMode::DriftReAnalyze);
        let report = t.maintain();
        assert_eq!(report.action, MaintenanceAction::Reanalyzed);
        let after = t.maintain();
        assert_eq!(after.action, MaintenanceAction::None, "{after}");
        // OnlineRefine with no replayed feedback falls back to a full
        // re-ANALYZE (maintain's own audit fills the exact counts, so the
        // first maintain can normally refine — force the fallback by
        // clearing the reservoir and letting staleness drive the repair).
        let mut t = drifted_table(MaintenanceMode::OnlineRefine);
        {
            let serving = t.serving.get_mut().unwrap_or_else(PoisonError::into_inner);
            serving.reservoir.clear();
        }
        t.options.auto_analyze_threshold = Some(0.25);
        let report = t.maintain();
        assert_eq!(report.action, MaintenanceAction::Reanalyzed, "{report}");
        t.options.auto_analyze_threshold = None;
        // OnlineRefine with feedback refines in place: the stats era
        // advances, the action carries the refine report, and repeated
        // passes drive the audited error down without any re-ANALYZE.
        let mut t = drifted_table(MaintenanceMode::OnlineRefine);
        let before = t
            .audit_accuracy()
            .expect("queries were sampled")
            .avg_relative_error;
        let era = t.stats_era;
        let report = t.maintain();
        let MaintenanceAction::Refined(refined) = report.action else {
            panic!("expected a refine, got {report}");
        };
        assert!(refined.observations > 0);
        assert!(t.stats_era > era, "refine must publish a new stats era");
        let mut error = before;
        for _ in 0..6 {
            let r = t.maintain();
            if let Some(audit) = r.audit {
                error = audit.avg_relative_error;
            }
            if matches!(r.action, MaintenanceAction::None) {
                break;
            }
        }
        assert!(
            error < before && error <= t.options.accuracy_drift_threshold,
            "refine passes must heal the drift: {before} -> {error}"
        );
        // Estimates remain clamped in [0, N] throughout.
        for i in 0..20 {
            let q = Rect::new(0.0, 0.0, 3.0 + i as f64 * 11.0, 3.0 + i as f64 * 7.0);
            let est = t.estimate(&q);
            assert!((0.0..=t.len() as f64).contains(&est));
        }
    }

    #[test]
    fn metrics_off_disables_sampling_and_reservoir() {
        let mut t = SpatialTable::new(TableOptions {
            metrics: false,
            ..TableOptions::default()
        });
        for iy in 0..10 {
            for ix in 0..10 {
                let (x, y) = (ix as f64 * 10.0, iy as f64 * 10.0);
                t.insert(Rect::new(x, y, x + 5.0, y + 5.0));
            }
        }
        t.analyze();
        for i in 0..40 {
            let _ = t.estimate(&Rect::new(0.0, 0.0, 5.0 + i as f64, 5.0));
        }
        assert!(t.audit_accuracy().is_none());
        // Diagnostics counters still work (they are plain bookkeeping, not
        // registry metrics)...
        assert_eq!(t.stats_diagnostics().cache_misses, 40);
        // ...but nothing was published to the registry.
        let snap = t.metrics();
        assert!(snap.counters.iter().all(|&(_, v)| v == 0), "{snap:?}");
    }
}
