//! The spatial table: storage, index, statistics, and the execution loop.

use minskew_core::{
    build_equi_area, build_equi_count, build_uniform, MinSkewBuilder, SpatialEstimator,
    SpatialHistogram,
};
use minskew_data::Dataset;
use minskew_geom::Rect;
use minskew_rtree::{RStarTree, RTreeConfig};

use crate::{CostModel, Explain, Plan};

/// Stable identifier of a row in a [`SpatialTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(u64);

/// Which statistics technique `ANALYZE` builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StatsTechnique {
    /// Min-Skew (the paper's recommendation) — the default.
    #[default]
    MinSkew,
    /// Equi-Area BSP.
    EquiArea,
    /// Equi-Count BSP.
    EquiCount,
    /// Single-bucket uniformity assumption.
    Uniform,
}

/// `ANALYZE` parameters.
#[derive(Debug, Clone, Copy)]
pub struct AnalyzeOptions {
    /// Technique to build.
    pub technique: StatsTechnique,
    /// Bucket budget.
    pub buckets: usize,
    /// Min-Skew grid regions (ignored by the other techniques).
    pub regions: usize,
    /// Min-Skew progressive refinements.
    pub refinements: usize,
}

impl Default for AnalyzeOptions {
    fn default() -> AnalyzeOptions {
        AnalyzeOptions {
            technique: StatsTechnique::MinSkew,
            buckets: 100,
            regions: 10_000,
            refinements: 0,
        }
    }
}

/// Table-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct TableOptions {
    /// Plan-cost constants.
    pub cost_model: CostModel,
    /// Statistics configuration used by [`SpatialTable::analyze`] and by
    /// automatic re-analysis.
    pub analyze: AnalyzeOptions,
    /// When statistics staleness exceeds this fraction, the next plan
    /// triggers an automatic `ANALYZE` first (`None` disables).
    pub auto_analyze_threshold: Option<f64>,
    /// R\*-tree node capacity.
    pub index_fanout: usize,
}

impl Default for TableOptions {
    fn default() -> TableOptions {
        TableOptions {
            cost_model: CostModel::default(),
            analyze: AnalyzeOptions::default(),
            auto_analyze_threshold: Some(0.2),
            index_fanout: 16,
        }
    }
}

/// A spatial table: rows of rectangles with a stable id, an R\*-tree index,
/// and optimizer statistics.
pub struct SpatialTable {
    options: TableOptions,
    rows: Vec<Option<Rect>>, // slot per RowId; None = deleted
    live: usize,
    index: RStarTree<u64>,
    stats: Option<SpatialHistogram>,
}

impl SpatialTable {
    /// Creates an empty table.
    pub fn new(options: TableOptions) -> SpatialTable {
        SpatialTable {
            rows: Vec::new(),
            live: 0,
            index: RStarTree::new(RTreeConfig::with_max_entries(options.index_fanout)),
            stats: None,
            options,
        }
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` if the table has no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The current statistics histogram, if `ANALYZE` has run.
    pub fn stats(&self) -> Option<&SpatialHistogram> {
        self.stats.as_ref()
    }

    /// Inserts a rectangle; returns its row id.
    ///
    /// The index is maintained eagerly (as a DBMS would); the statistics
    /// are patched incrementally and their staleness grows.
    pub fn insert(&mut self, rect: Rect) -> RowId {
        let id = self.rows.len() as u64;
        self.rows.push(Some(rect));
        self.live += 1;
        self.index.insert(rect, id);
        if let Some(stats) = &mut self.stats {
            stats.note_insert(&rect);
        }
        RowId(id)
    }

    /// Deletes a row; returns `false` if the id was unknown or already
    /// deleted.
    pub fn delete(&mut self, id: RowId) -> bool {
        let Some(slot) = self.rows.get_mut(id.0 as usize) else {
            return false;
        };
        let Some(rect) = slot.take() else {
            return false;
        };
        self.live -= 1;
        let removed = self.index.remove(&rect, &id.0);
        debug_assert!(removed, "index out of sync with storage");
        if let Some(stats) = &mut self.stats {
            stats.note_delete(&rect);
        }
        true
    }

    /// Fetches a row's rectangle.
    pub fn get(&self, id: RowId) -> Option<Rect> {
        self.rows.get(id.0 as usize).copied().flatten()
    }

    /// Rebuilds the optimizer statistics from the live rows
    /// (the `ANALYZE` command).
    pub fn analyze(&mut self) {
        let opts = self.options.analyze;
        let data = Dataset::new(self.rows.iter().flatten().copied().collect());
        let hist = match opts.technique {
            StatsTechnique::MinSkew => {
                let mut b = MinSkewBuilder::new(opts.buckets).regions(opts.regions);
                if opts.refinements > 0 {
                    b = b.progressive_refinements(opts.refinements);
                }
                b.build(&data)
            }
            StatsTechnique::EquiArea => build_equi_area(&data, opts.buckets),
            StatsTechnique::EquiCount => build_equi_count(&data, opts.buckets),
            StatsTechnique::Uniform => build_uniform(&data),
        };
        self.stats = Some(hist);
    }

    /// Estimated result size for `query`, falling back to the global
    /// uniformity assumption when the table was never analyzed.
    pub fn estimate(&self, query: &Rect) -> f64 {
        match &self.stats {
            Some(stats) => stats.estimate_count(query),
            None => {
                // Planner fallback: treat the whole table as one bucket
                // covering the index MBR (a DBMS guesses without stats too).
                if self.live == 0 {
                    return 0.0;
                }
                let mbr = self.index.mbr();
                let frac = if mbr.area() > 0.0 {
                    query.intersection_area(&mbr) / mbr.area()
                } else if query.intersects(&mbr) {
                    1.0
                } else {
                    0.0
                };
                self.live as f64 * frac
            }
        }
    }

    fn stats_stale(&self) -> bool {
        match (&self.stats, self.options.auto_analyze_threshold) {
            (None, _) => true,
            (Some(stats), Some(threshold)) => stats.staleness() > threshold,
            (Some(_), None) => false,
        }
    }

    /// Plans `query` without executing it. Runs auto-`ANALYZE` first when
    /// the statistics are missing or too stale (and auto-analysis is
    /// enabled).
    pub fn plan(&mut self, query: &Rect) -> Explain {
        if self.stats_stale() && self.options.auto_analyze_threshold.is_some() && self.live > 0 {
            self.analyze();
        }
        let stale = self.stats_stale();
        let est = self.estimate(query);
        let model = self.options.cost_model;
        let plan = model.choose(self.live, est);
        let (cost, rejected) = match plan {
            Plan::IndexScan => (model.index_scan_cost(est), model.seq_scan_cost(self.live)),
            Plan::SeqScan => (model.seq_scan_cost(self.live), model.index_scan_cost(est)),
        };
        Explain {
            plan,
            estimated_rows: est,
            estimated_cost: cost,
            rejected_cost: rejected,
            actual_rows: None,
            stats_stale: stale,
        }
    }

    /// Executes `query`, returning matching row ids (ascending).
    pub fn execute(&mut self, query: &Rect) -> Vec<RowId> {
        self.execute_explain(query).0
    }

    /// Executes `query` and returns the `EXPLAIN ANALYZE` record alongside
    /// the matching row ids.
    pub fn execute_explain(&mut self, query: &Rect) -> (Vec<RowId>, Explain) {
        let mut explain = self.plan(query);
        let mut ids: Vec<RowId> = match explain.plan {
            Plan::SeqScan => self
                .rows
                .iter()
                .enumerate()
                .filter_map(|(i, slot)| {
                    slot.filter(|r| r.intersects(query)).map(|_| RowId(i as u64))
                })
                .collect(),
            Plan::IndexScan => {
                let mut out = Vec::new();
                self.index.for_each_intersecting(query, |item| {
                    out.push(RowId(item.data));
                });
                out
            }
        };
        ids.sort_unstable();
        explain.actual_rows = Some(ids.len());
        (ids, explain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minskew_datagen::charminar_with;

    fn grid_table(side: usize) -> SpatialTable {
        let mut t = SpatialTable::new(TableOptions::default());
        for iy in 0..side {
            for ix in 0..side {
                let (x, y) = (ix as f64 * 10.0, iy as f64 * 10.0);
                t.insert(Rect::new(x, y, x + 5.0, y + 5.0));
            }
        }
        t
    }

    #[test]
    fn both_plans_return_identical_results() {
        let mut t = grid_table(40); // 1600 rows
        t.analyze();
        let q = Rect::new(33.0, 33.0, 180.0, 90.0);
        // Force each plan by manipulating the cost model.
        t.options.cost_model.index_tuple_cost = 0.0;
        t.options.cost_model.index_setup_cost = 0.0;
        let (via_index, e1) = t.execute_explain(&q);
        assert!(e1.plan.is_index_scan());
        t.options.cost_model.index_tuple_cost = f64::INFINITY;
        let (via_scan, e2) = t.execute_explain(&q);
        assert_eq!(e2.plan, Plan::SeqScan);
        assert_eq!(via_index, via_scan);
        assert!(!via_index.is_empty());
    }

    #[test]
    fn planner_switches_with_query_size() {
        let mut t = grid_table(50); // 2500 rows
        t.analyze();
        let small = t.plan(&Rect::new(0.0, 0.0, 20.0, 20.0));
        assert!(small.plan.is_index_scan(), "{small}");
        let huge = t.plan(&Rect::new(-10.0, -10.0, 1_000.0, 1_000.0));
        assert_eq!(huge.plan, Plan::SeqScan, "{huge}");
        // Estimates should be near reality after ANALYZE on uniform data.
        let (rows, e) = t.execute_explain(&Rect::new(0.0, 0.0, 100.0, 100.0));
        let actual = rows.len() as f64;
        assert!(
            (e.estimated_rows - actual).abs() / actual < 0.5,
            "estimate {} vs actual {}",
            e.estimated_rows,
            actual
        );
    }

    #[test]
    fn unanalyzed_table_plans_with_fallback() {
        let mut t = SpatialTable::new(TableOptions {
            auto_analyze_threshold: None, // keep it unanalyzed
            ..TableOptions::default()
        });
        for i in 0..100 {
            t.insert(Rect::new(i as f64, 0.0, i as f64 + 1.0, 1.0));
        }
        let e = t.plan(&Rect::new(0.0, 0.0, 10.0, 1.0));
        assert!(e.stats_stale);
        assert!(e.estimated_rows > 0.0);
    }

    #[test]
    fn delete_updates_results_and_index() {
        let mut t = grid_table(10);
        t.analyze();
        let q = Rect::new(0.0, 0.0, 9.0, 9.0); // exactly the first cell
        let (rows, _) = t.execute_explain(&q);
        assert_eq!(rows.len(), 1);
        assert!(t.delete(rows[0]));
        assert!(!t.delete(rows[0]), "double delete must fail");
        let (rows, _) = t.execute_explain(&q);
        assert!(rows.is_empty());
        assert_eq!(t.len(), 99);
        assert_eq!(t.get(RowId(0)), None);
    }

    #[test]
    fn auto_analyze_fires_on_churn() {
        let mut t = SpatialTable::new(TableOptions::default());
        for r in charminar_with(2_000, 1).rects() {
            t.insert(*r);
        }
        t.analyze();
        assert_eq!(t.stats().unwrap().staleness(), 0.0);
        // Churn well past the 20% threshold.
        for i in 0..1_500 {
            let x = 4_000.0 + (i % 40) as f64 * 20.0;
            let y = 4_000.0 + (i / 40) as f64 * 20.0;
            t.insert(Rect::new(x, y, x + 50.0, y + 50.0));
        }
        assert!(t.stats().unwrap().staleness() > 0.2);
        // The next plan triggers ANALYZE; afterwards staleness resets.
        let _ = t.plan(&Rect::new(4_000.0, 4_000.0, 5_000.0, 5_000.0));
        assert!(t.stats().unwrap().staleness() < 1e-9);
    }

    #[test]
    fn estimates_drive_better_plans_after_analyze() {
        // Skewed table: a hot corner plus sparse background. A stats-less
        // planner (uniform fallback) badly misestimates corner queries;
        // after ANALYZE the estimate is good enough to pick the right plan.
        let mut t = SpatialTable::new(TableOptions {
            auto_analyze_threshold: None,
            ..TableOptions::default()
        });
        for r in charminar_with(10_000, 2).rects() {
            t.insert(*r);
        }
        let corner = Rect::new(0.0, 0.0, 1_500.0, 1_500.0);
        let before = t.plan(&corner);
        t.analyze();
        let after = t.plan(&corner);
        let (rows, _) = t.execute_explain(&corner);
        let actual = rows.len() as f64;
        let err =
            |e: &Explain| (e.estimated_rows - actual).abs() / actual.max(1.0);
        assert!(
            err(&after) < err(&before),
            "ANALYZE must improve the corner estimate ({:.2} -> {:.2})",
            err(&before),
            err(&after)
        );
    }

    #[test]
    fn empty_table_is_sane() {
        let mut t = SpatialTable::new(TableOptions::default());
        assert!(t.is_empty());
        let (rows, e) = t.execute_explain(&Rect::new(0.0, 0.0, 1.0, 1.0));
        assert!(rows.is_empty());
        assert_eq!(e.actual_rows, Some(0));
        assert!(!t.delete(RowId(5)));
    }

    #[test]
    fn alternative_stats_techniques() {
        for technique in [
            StatsTechnique::EquiArea,
            StatsTechnique::EquiCount,
            StatsTechnique::Uniform,
        ] {
            let mut t = SpatialTable::new(TableOptions {
                analyze: AnalyzeOptions {
                    technique,
                    buckets: 30,
                    ..Default::default()
                },
                ..TableOptions::default()
            });
            for r in charminar_with(1_000, 3).rects() {
                t.insert(*r);
            }
            t.analyze();
            let e = t.plan(&Rect::new(0.0, 0.0, 2_000.0, 2_000.0));
            assert!(e.estimated_rows.is_finite() && e.estimated_rows >= 0.0);
        }
    }
}
