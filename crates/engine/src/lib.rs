//! A miniature spatial query engine demonstrating selectivity estimation in
//! its native habitat: **cost-based query optimization**.
//!
//! The paper's opening motivation is that "query optimizers use query
//! result size estimates to determine the most efficient way to execute
//! queries". This crate closes that loop end to end:
//!
//! * [`SpatialTable`] stores rectangles behind a stable row-id interface,
//!   maintains an R\*-tree index, and keeps optimizer statistics (a
//!   Min-Skew histogram by default) refreshed via `ANALYZE`.
//! * The [`planner`](Plan) chooses between a **sequential scan** and an
//!   **index scan** per query using the histogram's estimated result size
//!   and a configurable [`CostModel`] — exactly the access-path-selection
//!   decision of [SAC+79] transplanted to spatial data.
//! * [`Explain`] reports the decision, the estimate, and (after execution)
//!   the actual row count — the `EXPLAIN ANALYZE` a DBA would read.
//! * Mutations feed the histogram's staleness tracker; the table re-runs
//!   ANALYZE automatically past a configurable churn threshold.
//! * Statistics are **degradation-protected**: when the configured build
//!   cannot succeed or a persisted summary is corrupt, the table walks a
//!   fallback ladder (achievable bucket budget → rebuild from data → the
//!   uniform assumption) recorded in [`StatsDiagnostics`], and every
//!   estimate is clamped to `[0, N]`.
//!
//! # Example
//!
//! ```
//! use minskew_engine::{SpatialTable, TableOptions};
//! use minskew_geom::Rect;
//!
//! let mut table = SpatialTable::new(TableOptions::default());
//! for i in 0..1_000 {
//!     let x = (i % 100) as f64 * 10.0;
//!     let y = (i / 100) as f64 * 10.0;
//!     table.insert(Rect::new(x, y, x + 5.0, y + 5.0));
//! }
//! table.analyze();
//!
//! // A tiny query: the planner picks the index.
//! let (rows, explain) = table.execute_explain(&Rect::new(0.0, 0.0, 30.0, 30.0));
//! assert!(explain.plan.is_index_scan());
//! assert_eq!(explain.actual_rows, Some(rows.len()));
//!
//! // A query covering everything: scanning is cheaper than chasing the
//! // whole index.
//! let (_, explain) = table.execute_explain(&Rect::new(0.0, 0.0, 1e4, 1e4));
//! assert!(!explain.plan.is_index_scan());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod cache;
mod catalog;
mod monitor;
mod persist;
mod planner;
mod publish;
mod reader;
mod server;
mod table;

pub use catalog::{CatalogEntry, CatalogError, SpatialCatalog, MAX_TABLE_NAME};
pub use monitor::AccuracyReport;
pub use persist::{SnapshotIoError, SnapshotLoadReport};
pub use planner::{CostModel, Explain, Plan};
pub use publish::{
    CacheDisposition, EstimatePath, EstimateScratch, EstimateTrace, SnapshotCell, TableSnapshot,
};
pub use reader::{BatchQueryError, SpatialReader};
pub use server::{serve, ServeOptions, ServerHandle};
pub use table::{
    AnalyzeOptions, MaintenanceAction, MaintenanceMode, MaintenanceReport, RowId, SpatialTable,
    StatsDiagnostics, StatsFallback, StatsTechnique, TableOptions,
};
