//! Property tests: the engine's results must always equal a naive shadow
//! table regardless of plan choice, mutation order, or statistics state.

#![cfg(feature = "proptest")]

use minskew_engine::{RowId, SpatialTable, TableOptions};
use minskew_geom::Rect;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(Rect),
    DeleteAt(usize),
    Query(Rect),
    Analyze,
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0.0..300.0f64, 0.0..300.0f64, 0.0..30.0f64, 0.0..30.0f64)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => arb_rect().prop_map(Op::Insert),
        2 => any::<usize>().prop_map(Op::DeleteAt),
        3 => (0.0..300.0f64, 0.0..300.0f64, 0.0..200.0f64, 0.0..200.0f64)
            .prop_map(|(x, y, w, h)| Op::Query(Rect::new(x, y, x + w, y + h))),
        1 => Just(Op::Analyze),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn engine_matches_shadow_table(
        ops in proptest::collection::vec(arb_op(), 1..200),
        auto_analyze in any::<bool>(),
    ) {
        let mut table = SpatialTable::new(TableOptions {
            auto_analyze_threshold: if auto_analyze { Some(0.15) } else { None },
            ..TableOptions::default()
        });
        let mut shadow: Vec<(RowId, Rect)> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(r) => {
                    let id = table.insert(r);
                    shadow.push((id, r));
                }
                Op::DeleteAt(pos) => {
                    if !shadow.is_empty() {
                        let (id, _) = shadow.swap_remove(pos % shadow.len());
                        prop_assert!(table.delete(id));
                        prop_assert!(!table.delete(id), "double delete");
                    }
                }
                Op::Query(q) => {
                    let (mut got, explain) = table.execute_explain(&q);
                    let mut want: Vec<RowId> = shadow
                        .iter()
                        .filter(|(_, r)| r.intersects(&q))
                        .map(|&(id, _)| id)
                        .collect();
                    got.sort();
                    want.sort();
                    prop_assert_eq!(&got, &want, "plan was {:?}", explain.plan);
                    prop_assert_eq!(explain.actual_rows, Some(want.len()));
                    prop_assert!(explain.estimated_rows >= 0.0);
                    prop_assert!(explain.estimated_cost <= explain.rejected_cost);
                }
                Op::Analyze => table.analyze(),
            }
            prop_assert_eq!(table.len(), shadow.len());
        }
        // Row lookups agree at the end.
        for &(id, r) in &shadow {
            prop_assert_eq!(table.get(id), Some(r));
        }
    }
}
